//! The storage manager: append/read token-row streams as f16 chunks.
//!
//! # Sharded locking discipline
//!
//! The manager is built for concurrent stream IO: N pipelined restores
//! (readers), the two-stage saver's chunk daemon (an appender) and the
//! cache controller's demotion sweep (a deleter) all run against one
//! manager at once, and none of them may serialize the others on backend
//! IO or f16 decode. The state is therefore sharded two levels deep:
//!
//! * an **outer map** `RwLock<HashMap<StreamId, Arc<RwLock<StreamState>>>>`
//!   that only resolves stream ids to their state cell (held for
//!   microseconds — never across backend IO or codec work), and
//! * a **per-stream `RwLock<StreamState>`** guarding that stream's append
//!   cursor, partial-tail buffer and resident-byte figure.
//!
//! Lock order is strictly **map before stream**: no code path acquires the
//! outer map lock while holding a stream lock (paths that need both drop
//! the stream guard first). What may be held across backend IO:
//!
//! * [`StorageManager::read_rows`] — **nothing**. It snapshots the
//!   stream's durable cursor (and clones the partial tail if the range
//!   touches it) under a brief per-stream *read* lock, then performs every
//!   backend read and every f16/int8 decode with no lock held. Durable
//!   chunks are immutable once the cursor covers them, so the snapshot
//!   stays valid without the lock.
//! * [`StorageManager::append_rows`] / [`StorageManager::flush_stream`] /
//!   [`StorageManager::delete_stream`] — only **their own stream's write
//!   lock**. This preserves per-stream ordering (chunks become durable
//!   before the cursor advances past them) while leaving every other
//!   stream fully concurrent.
//!
//! The aggregate [`StorageManager::total_resident_bytes`] figure lives in
//! an atomic, updated in the same stream-write critical sections that edit
//! the per-stream figures, so quota trackers poll it lock-free.
//!
//! # Chunk-fanout reads
//!
//! With [`StorageManager::with_read_fanout`], a single `read_rows` call
//! additionally overlaps its *own* chunk reads: after the lock-free
//! snapshot, the range's durable chunk keys are partitioned by owning
//! device ([`crate::chunk::device_for`]) and submitted to a reusable
//! bounded worker pool ([`crate::fanout::FanoutPool`]) as one lane per
//! device, while the calling thread decodes and places each chunk as its
//! completion lands. What may be in flight: at most `width` chunk reads
//! across *all* concurrent readers sharing the pool (the pool is the
//! bound), plus up to `width` raw chunk payloads buffered **per reader**
//! in that reader's own bounded completion channel (a slow decoder
//! backpressures its own lanes, so staging is O(width) per concurrent
//! reader, not global). The locking discipline is unchanged —
//! fanout runs entirely inside the lock-free phase, pool workers touch
//! only the backend (never a stream lock or the map), and the post-IO
//! tombstone revalidation covers fanout reads exactly as it covers
//! sequential ones. Output is bit-identical to the sequential read at
//! every width: both paths share the validate/decode/copy helpers and
//! each slice owns a disjoint row range of the output.
//!
//! # Chunk-streaming reads
//!
//! [`StorageManager::read_rows_streaming`] is the read path underneath
//! [`StorageManager::read_rows`], exposed to callers that want each token
//! chunk *as soon as its IO lands* instead of waiting for the whole range:
//! the caller supplies a [`RowSink`] and the manager delivers one decoded
//! [`DeliveredRows`] per chunk slice (out of completion order under
//! fanout; range order on the sequential path). The restore engine's
//! chunk-granular pipeline (§4.1.2 token-wise partitioning) feeds its
//! compute stage from this, so projection on chunk *k* overlaps the IO of
//! chunk *k+1* inside one layer.
//!
//! The tombstone revalidation is preserved **per delivered chunk**: the
//! snapshot cell's tombstone is re-checked after each chunk's IO and
//! decode, immediately *before* that chunk is handed to the sink. If a
//! concurrent `delete_stream` (possibly followed by a restarting appender
//! reusing the same chunk keys) lands mid-stream, the sink gets a
//! [`RowSink::reset`] — everything delivered so far must be discarded —
//! and the read restarts against the successor state, so the chunks a
//! completed call delivered are always one single generation (the same
//! guarantee `read_rows` gives for its assembled tensor, which is in fact
//! built by an internal sink on exactly this path).
//!
//! # Adaptive fanout width
//!
//! Reads consult the range before drawing on the pool: the fanout is
//! skipped entirely (chunks are read inline) when the range has ≤ 1
//! durable chunk, when at most one durable chunk would actually occupy a
//! device ([`crate::backend::ChunkStore::chunk_in_fast_tier`] — DRAM-tier
//! front hits complete at memcpy speed, so queueing them on IO workers
//! only adds handoff latency), or when every device-occupying chunk lives
//! on one lane (a single lane serializes there anyway — front hits do not
//! count toward the lane tally). When the pool *is* used, front hits are
//! still read inline by the calling thread (only device-occupying chunks
//! ride the lanes), and the effective width — the completion-channel
//! staging bound — is capped at the count of occupied lanes, never the
//! pool's full width.
//!
//! Deletion vs. concurrent appends uses a tombstone: `delete_stream` marks
//! the state deleted and wipes the backend *while holding the stream write
//! lock*, then drops the dead map entry. A writer holding a stale handle
//! observes the tombstone (only ever after the backend wipe completed,
//! since it had to wait for the same write lock) and retries through the
//! map, starting a fresh stream — exactly the sequential
//! delete-then-append semantics — so freed bytes always equal the tracked
//! resident bytes, never counting rows that arrived after the wipe. A
//! *reader* whose snapshot cell gets tombstoned mid-IO re-checks the
//! tombstone after its lock-free phase and retries against the successor
//! state, so a delete + restart never yields mixed-generation rows.
//!
//! # Crash durability: journal + recovery protocol
//!
//! A manager with a [`crate::journal::Journal`] attached (built by
//! [`StorageManager::create_durable`], rebuilt by
//! [`StorageManager::reopen`]) survives a host crash. The protocol has
//! two write-ordering rules and one recovery pass:
//!
//! * **Chunk commits — write, then log.** Every durable chunk write
//!   (full chunks in [`StorageManager::append_rows`], flushed tails in
//!   [`StorageManager::flush_stream`]) completes durably in the backend
//!   first (temp file + `sync_all` + atomic rename + parent-dir fsync in
//!   [`crate::backend::FileStore`]) and is *then* journaled as a
//!   `ChunkCommit` record `(stream, chunk idx, generation, rows, tail
//!   flag, byte length, chunk CRC32)`. A crash between the two leaves an
//!   orphan chunk file recovery sweeps away; a present record implies a
//!   durable chunk whose integrity the CRC can prove.
//! * **Deletes — log, then wipe.** [`StorageManager::delete_stream`]
//!   journals a `StreamDelete` record (bumping the stream's generation)
//!   before wiping the backend. A crash between the two leaves orphan
//!   chunk files of a dead generation — again removed by the sweep —
//!   never a resurrected stream.
//!
//! **Recovery** ([`StorageManager::reopen`] /
//! [`StorageManager::recover`]) replays the journal — truncating a torn
//! journal tail back to the last consistent record by frame CRC — folds
//! the records into each stream's expected chunk list, then validates
//! every chunk against the backend in index order: a missing, short or
//! CRC-mismatching chunk (a torn final write, or bit rot) truncates the
//! stream at that chunk; a chunk *longer* than journaled with a matching
//! prefix CRC (a durable tail re-flush that outran its journal record) is
//! trimmed back to exactly the journaled bytes. The surviving prefix
//! rebuilds the stream's durable cursor, decoded partial tail,
//! resident-byte and tail-byte figures — so the freed == tracked
//! invariant holds across restart — and every backend chunk not named by
//! a surviving record is deleted. The report
//! ([`crate::manager::RecoveryReport`]) quantifies all of it.
//!
//! # Fault matrix: typed errors and blast radius
//!
//! Storage faults surface as **typed** errors with a bounded blast
//! radius; the failure-scenario suite drives each row of this matrix
//! through [`crate::fault::FaultStore`]:
//!
//! | Fault | Typed error | Blast radius |
//! |---|---|---|
//! | Device read error (permanent) | [`StorageError::DeviceFailed`] `{transient: false}` through `read_rows`/`read_rows_streaming` → `RestoreError`/`CtlError`/`SystemError` | The faulted read/session only; sibling restores complete bit-identical |
//! | Device read error (transient) | Masked by budgeted retry with jittered backoff ([`crate::health::RetryPolicy`]) in every read path; surfaces as `DeviceFailed {transient: true}` only if it persists | None when masked |
//! | Sick device (repeated errors/stalls) | The [`crate::health::DeviceHealth`] breaker opens; reads fail fast typed-transient until a half-open probe heals the lane | Restores degrade affected layers to recompute (see `hc-cachectl`); no session fails |
//! | Stalled reactor submission | Timed out at the [`RetryPolicy::io_deadline`] into `DeviceFailed {transient: true}`, counted as a stall against the lane's breaker | The one read; its lane is not wedged |
//! | Device write error | `DeviceFailed` from `append_rows`/`flush_stream` | The appending stream only |
//! | Read stall | No error — the lane is slow, not dead; fanout siblings proceed | Latency of the stalled read only |
//! | Torn chunk write (crash) | Detected at reopen by chunk CRC; stream truncated to last consistent prefix | Rows past the torn chunk of that stream |
//! | Torn journal tail (crash) | Detected at reopen by frame CRC; journal truncated to last consistent record | The unjournaled suffix of affected streams |
//! | Mid-restore delete/eviction | [`RowSink::reset`] + retry on the successor generation, or `MissingChunk`/`OutOfRange` — never mixed-generation rows | The deleted stream only |

// hc-analyze: lock-order map=streams < stream=cell=c=stream_handle < job=core
// (The documented sharded discipline, machine-checked: the `streams`
// map lock strictly before any per-stream `cell` lock, and a reactor
// read job's `core` lock only innermost. Aliases name the receiver
// idents each class is acquired through.)
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hc_tensor::Tensor2;
use parking_lot::RwLock;

use crossbeam::channel::{bounded, RecvTimeoutError};

use crate::backend::{ChunkStore, FileStore, StoreStats};
use crate::chunk::{chunks_for_range, device_for, ChunkKey, ChunkSlice, CHUNK_TOKENS};
use crate::fanout::FanoutPool;
use crate::health::{Admit, DeviceHealth, RetryPolicy};
use crate::journal::{crc32, Journal, JournalHeader, JournalRecord, JournalReplay};
use crate::reactor::Reactor;
use crate::{Precision, StorageError, StreamId};

/// Reads one chunk under the manager's [`RetryPolicy`] and [`DeviceHealth`]
/// breaker, retrying *transient* device failures with jittered exponential
/// backoff until the attempt count or the backoff budget runs out
/// (permanent failures and every other error surface immediately). Shared
/// by the sequential walk, the fanout lanes, the reactor submissions and
/// the recovery validation pass, so every read path masks the same blips
/// and feeds the same breaker.
///
/// Breaker interaction: reads of device-occupying chunks first ask the
/// breaker for admission — an open lane fails fast with a typed transient
/// [`StorageError::DeviceFailed`] (no device IO, no backoff), and a
/// half-open lane admits exactly one probe attempt (no retries, so the
/// probe verdict lands promptly). DRAM-front-tier hits bypass the breaker
/// entirely: they never touch the device, so a sick lane must not deny
/// them — and their success must not heal it.
///
/// Every sleep happens with no lock held (hc-analyze enforces the class).
pub(crate) fn read_chunk_retrying<S: ChunkStore + ?Sized>(
    store: &S,
    key: ChunkKey,
    policy: &RetryPolicy,
    health: &DeviceHealth,
) -> Result<Vec<u8>, StorageError> {
    let device = device_for(&key, store.n_devices().max(1));
    let fast = store.chunk_in_fast_tier(key);
    let mut probe = false;
    if !fast {
        match health.admit(device) {
            Admit::Yes => {}
            Admit::Probe => probe = true,
            Admit::No => {
                return Err(StorageError::DeviceFailed {
                    key,
                    device,
                    transient: true,
                    msg: format!("circuit breaker open for device {device}"),
                })
            }
        }
    }
    let mut attempt = 1;
    let mut slept = Duration::ZERO;
    loop {
        match store.read_chunk(key) {
            Ok(data) => {
                if !fast {
                    health.record_success(device);
                }
                return Ok(data);
            }
            Err(
                e @ StorageError::DeviceFailed {
                    transient: true, ..
                },
            ) if !probe && attempt < policy.attempts => {
                health.record_failure(device, true);
                let backoff = policy.backoff(&key, attempt);
                if slept + backoff > policy.budget {
                    return Err(e);
                }
                std::thread::sleep(backoff);
                slept += backoff;
                attempt += 1;
            }
            Err(e) => {
                if let StorageError::DeviceFailed { transient, .. } = &e {
                    health.record_failure(device, *transient);
                }
                return Err(e);
            }
        }
    }
}

/// Per-stream append state.
#[derive(Debug, Default)]
struct StreamState {
    /// Total tokens appended (durable + buffered).
    n_tokens: u64,
    /// Tokens already written out in full chunks.
    n_durable: u64,
    /// Buffered rows of the partial tail chunk (`< CHUNK_TOKENS` rows,
    /// row-major f32).
    partial: Vec<f32>,
    /// Encoded bytes this stream currently holds in the backend. This is
    /// *resident* state, not traffic: rewriting a flushed tail chunk
    /// replaces its bytes instead of adding to them, so the figure equals
    /// exactly what [`ChunkStore::delete_stream`] would free — the number a
    /// capacity/quota tracker must account against.
    resident_bytes: u64,
    /// Encoded bytes of the currently-flushed partial tail chunk (subset of
    /// `resident_bytes`; replaced on re-flush, absorbed when the chunk
    /// completes).
    tail_bytes: u64,
    /// Tombstone left by [`StorageManager::delete_stream`]: the backend
    /// chunks are gone and this cell must not be written again. Writers
    /// holding a stale handle retry through the map (see module docs).
    deleted: bool,
}

/// One `read_rows` call's lock-free-phase inputs: the range's chunk
/// slices plus everything snapshotted under the brief stream read lock.
struct ReadPlan<'a> {
    stream: StreamId,
    slices: &'a [ChunkSlice],
    /// Durable-token cursor at snapshot time.
    durable: u64,
    /// Snapshotted partial tail; present iff the range reaches past
    /// `durable` and the buffer was non-empty.
    tail: Option<&'a [f32]>,
    /// First token of the requested range (maps to output row 0).
    range_start: u64,
}

/// One decoded token-chunk slice streamed out of
/// [`StorageManager::read_rows_streaming`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveredRows {
    /// Index of this slice in the range's `chunks_for_range` order (the
    /// tail slice, if any, is always last).
    pub slice_idx: usize,
    /// First row of the requested range this slice covers (row 0 is the
    /// range's `start` token).
    pub row_start: usize,
    /// The slice's decoded rows (`len × d_model`), carrying the same
    /// precision round-trip `read_rows` applies.
    pub rows: Tensor2,
}

/// Consumer of a streaming read: receives each chunk as its IO lands.
pub trait RowSink {
    /// One decoded chunk slice is ready. Under fanout, deliveries arrive
    /// in completion order, not range order — every slice covers a
    /// disjoint row range, so order never affects the assembled result.
    /// Return `false` to cancel the rest of the read (the streaming call
    /// then returns `Ok(())` without delivering further chunks).
    fn deliver(&mut self, chunk: DeliveredRows) -> bool;

    /// A concurrent delete invalidated the snapshot mid-stream: every
    /// chunk delivered so far belongs to a dead generation and must be
    /// discarded. The read restarts against the successor state and
    /// redelivers every slice.
    fn reset(&mut self);
}

/// How a single streaming pass over a snapshot ended.
enum StreamPhase {
    /// Every slice was delivered.
    Done,
    /// The sink cancelled the read.
    Cancelled,
    /// The snapshot was tombstoned mid-stream; retry on the successor.
    Restart,
}

/// `(slice_idx, key, device)` of device-occupying durable chunks,
/// ascending slice order.
type DeviceChunks = Vec<(usize, ChunkKey, usize)>;
/// `(slice_idx, key)` of DRAM-tier front hits, ascending slice order.
type FastChunks = Vec<(usize, ChunkKey)>;

/// One reactor-eligible read's submission plan: every device-occupying
/// durable chunk with its owning device (ascending slice order — the
/// order submissions enter the device queues), the DRAM-tier front hits
/// read inline, and the in-flight window.
struct ReactorPlan {
    device_chunks: DeviceChunks,
    fast: FastChunks,
    /// Max chunk reads in flight at once: `iodepth × occupied devices`,
    /// capped at the chunk count — also the completion-staging bound.
    window: usize,
}

/// One fanout-eligible read's submission plan: the device-occupying
/// chunks partitioned into per-device lanes for the pool, and the
/// DRAM-tier front hits the calling thread reads inline.
struct FanoutPlan<'p> {
    pool: &'p FanoutPool,
    /// Completion-channel bound: pool width capped at the occupied lanes.
    width: usize,
    /// Per-device lanes of `(slice_idx, key)` for device-occupying chunks.
    lanes: Vec<Vec<(usize, ChunkKey)>>,
    /// `(slice_idx, key)` of fast-tier front hits, ascending.
    fast: Vec<(usize, ChunkKey)>,
}

/// Chunked f16 storage for token-row streams, generic over the backend.
///
/// All rows are `d_model` wide (hidden states, keys and values all have the
/// model dimension under MHA). Appends accumulate into 64-token chunks;
/// full chunks are written immediately, the partial tail is buffered until
/// [`StorageManager::flush_stream`] (the two-stage saver's daemon calls the
/// append path, so this buffering is exactly the paper's "chunk buffers").
///
/// Concurrency: see the module docs — readers of distinct (or identical)
/// streams never contend on backend IO or decode, appends serialize only
/// within their own stream, and the aggregate byte accounting is lock-free
/// to read.
pub struct StorageManager<S: ChunkStore> {
    store: Arc<S>,
    d_model: usize,
    precision: Precision,
    /// Thread budget for chunk encode/decode (shared with the two-stage
    /// saver's daemon and the restore prefetcher, which run through this
    /// manager).
    parallel: hc_tensor::ParallelConfig,
    /// Chunk-fanout IO workers for `read_rows` (None: chunks are read
    /// sequentially from the calling thread). Shared by every read of this
    /// manager, so the in-flight IO bound holds across concurrent readers.
    fanout: Option<Arc<FanoutPool>>,
    /// Event-driven IO reactor (None: reads use the fanout pool or the
    /// sequential walk). When attached, multi-chunk reads ride the
    /// per-device submission queues instead of thread-per-lane fanout,
    /// and the async [`ReactorReadJob`] API becomes available. Takes
    /// precedence over `fanout` on eligible ranges.
    reactor: Option<Arc<Reactor>>,
    /// Outer shard map: stream id → per-stream state cell. Held only to
    /// resolve/insert/remove entries, never across IO or codec work.
    streams: RwLock<HashMap<StreamId, Arc<RwLock<StreamState>>>>,
    /// Sum of every stream's `resident_bytes`, maintained in the same
    /// stream-write critical sections that edit the per-stream figures.
    total_resident: AtomicU64,
    /// Crash-durability journal (None: metadata is memory-only and a
    /// crash loses the manager's stream state). See the module docs'
    /// recovery protocol.
    journal: Option<Arc<Journal>>,
    /// Transient-fault retry policy (attempts, jittered backoff, budget,
    /// reactor IO deadline) applied by every read path.
    retry: RetryPolicy,
    /// Per-device health registry: every IO outcome (manager reads/writes,
    /// reactor completions, deadline expirations) feeds its sliding
    /// windows and circuit breakers.
    health: Arc<DeviceHealth>,
}

impl<S: ChunkStore> StorageManager<S> {
    /// Creates a manager writing rows of width `d_model` to `store`, stored
    /// as fp16 (the paper's format).
    pub fn new(store: Arc<S>, d_model: usize) -> Self {
        Self::with_precision(store, d_model, Precision::F16)
    }

    /// Creates a manager with an explicit storage precision (int8 enables
    /// the §7 quantized-hidden-state extension).
    pub fn with_precision(store: Arc<S>, d_model: usize, precision: Precision) -> Self {
        assert!(d_model > 0, "d_model must be positive");
        let health = Arc::new(DeviceHealth::new(store.n_devices().max(1)));
        Self {
            store,
            d_model,
            precision,
            parallel: hc_tensor::ParallelConfig::serial(),
            fanout: None,
            reactor: None,
            streams: RwLock::new(HashMap::new()),
            total_resident: AtomicU64::new(0),
            journal: None,
            retry: RetryPolicy::default(),
            health,
        }
    }

    /// Replaces the transient-fault [`RetryPolicy`] (attempts, jittered
    /// backoff, per-read budget, reactor IO deadline).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Shares an external [`DeviceHealth`] registry (e.g. one registry
    /// spanning several managers over the same device array, or a
    /// test-configured breaker). Must cover at least the store's devices.
    pub fn with_device_health(mut self, health: Arc<DeviceHealth>) -> Self {
        assert!(
            health.n_devices() >= self.store.n_devices().max(1),
            "health registry must cover every store device"
        );
        self.health = health;
        self
    }

    /// The per-device health registry (breaker states, error/stall
    /// counters) fed by this manager's IO.
    pub fn device_health(&self) -> &Arc<DeviceHealth> {
        &self.health
    }

    /// Attaches a crash-durability journal: every durable chunk write and
    /// stream delete is logged so [`StorageManager::recover`] (or
    /// [`StorageManager::reopen`] for [`FileStore`] managers) can rebuild
    /// the stream metadata after a crash. The journal must belong to the
    /// same store root as `store`.
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The attached crash-durability journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// Sets the thread budget used for chunk encode/decode. The parallel
    /// codec is bit-identical to the serial one, so this changes wall-clock
    /// only, never stored bytes.
    pub fn with_parallel(mut self, parallel: hc_tensor::ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Thread budget used for chunk encode/decode.
    pub fn parallel(&self) -> hc_tensor::ParallelConfig {
        self.parallel
    }

    /// Enables chunk-fanout reads: `read_rows` partitions a range's durable
    /// chunk keys by owning device and keeps up to `width` chunk reads in
    /// flight on a reusable [`FanoutPool`]. Output is bit-identical to the
    /// sequential read at every width; a width ≤ 1 keeps the sequential
    /// path (and spawns nothing).
    pub fn with_read_fanout(self, width: usize) -> Self {
        if width <= 1 {
            let mut this = self;
            this.fanout = None;
            return this;
        }
        self.with_read_fanout_pool(Arc::new(FanoutPool::new(width)))
    }

    /// Like [`StorageManager::with_read_fanout`], but sharing an existing
    /// pool — several managers (or a scheduler that also accounts these
    /// workers against its host budget) can cap their combined in-flight
    /// IO with one worker set.
    pub fn with_read_fanout_pool(mut self, pool: Arc<FanoutPool>) -> Self {
        self.fanout = Some(pool).filter(|p| p.width() > 1);
        self
    }

    /// In-flight chunk reads a single `read_rows` call may issue (1 means
    /// sequential reads — no fanout configured).
    pub fn read_fanout_width(&self) -> usize {
        self.fanout.as_ref().map_or(1, |p| p.width())
    }

    /// The configured fanout pool, if any (tests observe its submission
    /// counter to pin the adaptive skip decisions).
    pub fn read_fanout_pool(&self) -> Option<&Arc<FanoutPool>> {
        self.fanout.as_ref()
    }

    /// Attaches an event-driven IO [`Reactor`] as the read engine:
    /// multi-chunk reads submit to its per-device queues (iodepth requests
    /// in flight per device) instead of fanning out thread-per-lane, and
    /// [`StorageManager::begin_read_reactor`] exposes the asynchronous
    /// read state machine restore drivers use to keep thousands of
    /// restores in flight from a fixed worker pool. Output is
    /// bit-identical to the sequential walk at every iodepth. The
    /// reactor's device count must match the store's.
    pub fn with_reactor(mut self, reactor: Arc<Reactor>) -> Self {
        assert_eq!(
            reactor.n_devices(),
            self.store.n_devices().max(1),
            "reactor device count must match the store's device count"
        );
        self.reactor = Some(reactor);
        self
    }

    /// The attached IO reactor, if any.
    pub fn reactor(&self) -> Option<&Arc<Reactor>> {
        self.reactor.as_ref()
    }

    /// How many chunk reads one `read_rows` call can keep in flight: the
    /// reactor's aggregate queue depth when one is attached, else the
    /// fanout width, else 1 (sequential). Restore pipelines size their
    /// chunk-staging depth from this.
    pub fn read_parallelism(&self) -> usize {
        let reactor = self
            .reactor
            .as_ref()
            .map_or(1, |r| r.n_devices() * r.iodepth());
        reactor.max(self.read_fanout_width())
    }

    /// Storage precision in use.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Row width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Backend handle (for stats and tests).
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// The live state cell for `stream`, if any.
    fn stream_handle(&self, stream: StreamId) -> Option<Arc<RwLock<StreamState>>> {
        self.streams.read().get(&stream).cloned()
    }

    /// Runs `f` under `stream`'s write lock. With `create`, a missing
    /// entry is inserted first (and `None` is never returned); without it,
    /// a missing entry returns `None` untouched.
    ///
    /// A tombstoned cell (concurrent [`StorageManager::delete_stream`]) is
    /// unlinked from the map and the lookup retried, so `f` always runs on
    /// a live state — and, because the tombstone is only observable after
    /// the deleter released the stream write lock, strictly after the
    /// backend wipe finished.
    fn with_stream_mut<R>(
        &self,
        stream: StreamId,
        create: bool,
        mut f: impl FnMut(&mut StreamState) -> R,
    ) -> Option<R> {
        loop {
            let cell = {
                let map = self.streams.read();
                match map.get(&stream) {
                    Some(c) => Arc::clone(c),
                    None => {
                        drop(map);
                        if !create {
                            return None;
                        }
                        Arc::clone(self.streams.write().entry(stream).or_default())
                    }
                }
            };
            let mut state = cell.write();
            if state.deleted {
                // Unlink the dead cell (unless someone already replaced
                // it) and retry through the map. Lock order: the stream
                // guard drops before the map lock is taken.
                drop(state);
                let mut map = self.streams.write();
                if map.get(&stream).is_some_and(|cur| Arc::ptr_eq(cur, &cell)) {
                    map.remove(&stream);
                }
                continue;
            }
            return Some(f(&mut state));
        }
    }

    /// Tokens appended to `stream` so far.
    pub fn n_tokens(&self, stream: StreamId) -> u64 {
        self.stream_handle(stream).map_or(0, |c| c.read().n_tokens)
    }

    /// Appends `rows` (an `n × d_model` tensor) to the stream.
    ///
    /// Full chunks are encoded to f16 and written to the backend right away;
    /// the remainder is buffered. Only this stream's write lock is held —
    /// appends to other streams, and all reads, proceed concurrently.
    ///
    /// # Panics
    /// Panics when the row width disagrees with the manager's `d_model`.
    pub fn append_rows(&self, stream: StreamId, rows: &Tensor2) -> Result<(), StorageError> {
        assert_eq!(rows.cols(), self.d_model, "row width mismatch");
        if rows.rows() == 0 {
            return Ok(());
        }
        self.with_stream_mut(stream, true, |state| {
            state.partial.extend_from_slice(rows.as_slice());
            state.n_tokens += rows.rows() as u64;

            // Drain any full chunks from the buffer.
            let chunk_elems = CHUNK_TOKENS as usize * self.d_model;
            while state.partial.len() >= chunk_elems {
                let chunk_idx = (state.n_durable / CHUNK_TOKENS) as u32;
                let rest = state.partial.split_off(chunk_elems);
                let full = std::mem::replace(&mut state.partial, rest);
                let bytes = self
                    .precision
                    .encode_par(&full, self.d_model, &self.parallel);
                let key = ChunkKey { stream, chunk_idx };
                self.store.write_chunk(key, &bytes)?;
                // Write, then log: the commit record is only appended once
                // the chunk write completed (durably, on a durable
                // backend), so a present record always names real bytes.
                if let Some(journal) = &self.journal {
                    journal.log_commit(key, CHUNK_TOKENS as u32, false, &bytes)?;
                }
                // The full chunk lands at the index a flushed tail (if any)
                // occupied, replacing those bytes rather than adding to them.
                let delta = bytes.len() as u64 - state.tail_bytes;
                state.resident_bytes += delta;
                self.total_resident.fetch_add(delta, Ordering::AcqRel);
                state.tail_bytes = 0;
                state.n_durable += CHUNK_TOKENS;
            }
            Ok(())
        })
        // hc-analyze: allow(panic) invariant: with_stream_mut(create=true) always yields a state
        .expect("create=true always yields a state")
    }

    /// Convenience: appends a single token row.
    pub fn append_row(&self, stream: StreamId, row: &[f32]) -> Result<(), StorageError> {
        let t = Tensor2::from_vec(1, row.len(), row.to_vec());
        self.append_rows(stream, &t)
    }

    /// Writes the buffered partial tail chunk (if any) to the backend. The
    /// buffer is retained so later appends can extend and rewrite the tail.
    pub fn flush_stream(&self, stream: StreamId) -> Result<(), StorageError> {
        self.with_stream_mut(stream, false, |state| {
            if state.partial.is_empty() {
                return Ok(());
            }
            let chunk_idx = (state.n_durable / CHUNK_TOKENS) as u32;
            let bytes = self
                .precision
                .encode_par(&state.partial, self.d_model, &self.parallel);
            let key = ChunkKey { stream, chunk_idx };
            self.store.write_chunk(key, &bytes)?;
            // Write, then log (see append_rows). Tail commits supersede
            // earlier tail commits at the same index during recovery.
            if let Some(journal) = &self.journal {
                let rows = (state.partial.len() / self.d_model) as u32;
                journal.log_commit(key, rows, true, &bytes)?;
            }
            // Re-flushing replaces the previous tail image in place.
            let delta = bytes.len() as u64 - state.tail_bytes;
            state.resident_bytes += delta;
            self.total_resident.fetch_add(delta, Ordering::AcqRel);
            state.tail_bytes = bytes.len() as u64;
            Ok(())
        })
        .unwrap_or(Ok(()))
    }

    /// Flushes every stream of `session`.
    pub fn flush_session(&self, session: u64) -> Result<(), StorageError> {
        let ids: Vec<StreamId> = {
            let streams = self.streams.read();
            streams
                .keys()
                .filter(|s| s.session == session)
                .cloned()
                .collect()
        };
        for id in ids {
            self.flush_stream(id)?;
        }
        Ok(())
    }

    /// Reads token rows `[start, end)` of `stream` as an f32 tensor
    /// (values carry the f16 round-trip). Serves durable chunks from the
    /// backend and the unflushed tail from the buffer.
    ///
    /// Concurrency: the stream's state is snapshotted under a brief read
    /// lock (cursor positions, plus a copy of the partial tail when the
    /// range needs it); **no lock is held across the backend reads or the
    /// chunk decodes**, so any number of concurrent `read_rows` calls —
    /// same stream or different streams — overlap their IO and decode
    /// fully. Durable chunks are immutable once the snapshot's cursor
    /// covers them, which keeps the lock-free phase consistent even while
    /// appenders extend the stream. A concurrent `delete_stream` (possibly
    /// followed by a restarting appender reusing the same chunk keys)
    /// tombstones the snapshotted cell, which this method re-checks after
    /// the IO phase — a stale generation is retried against the successor
    /// state instead of returning mixed-generation rows.
    pub fn read_rows(
        &self,
        stream: StreamId,
        start: u64,
        end: u64,
    ) -> Result<Tensor2, StorageError> {
        assert!(start <= end, "reversed range {start}..{end}");

        /// Assembles streamed chunks back into one tensor. The output is
        /// allocated on the first delivery — i.e. only after the streaming
        /// read's range validation passed, so an absurd `end` (stale
        /// session length, `u64::MAX` as "everything") surfaces as the
        /// `OutOfRange` error below instead of an allocation panic. Reset
        /// needs no work: every slice is redelivered on retry and every
        /// row of the output is covered by exactly one slice, so the dead
        /// generation's rows are all overwritten.
        struct Assemble {
            n_rows: usize,
            d_model: usize,
            out: Option<Tensor2>,
        }
        impl RowSink for Assemble {
            fn deliver(&mut self, chunk: DeliveredRows) -> bool {
                let out = self
                    .out
                    .get_or_insert_with(|| Tensor2::zeros(self.n_rows, self.d_model));
                for r in 0..chunk.rows.rows() {
                    out.row_mut(chunk.row_start + r)
                        .copy_from_slice(chunk.rows.row(r));
                }
                true
            }

            fn reset(&mut self) {}
        }

        let mut sink = Assemble {
            n_rows: (end - start) as usize,
            d_model: self.d_model,
            out: None,
        };
        self.read_rows_streaming(stream, start, end, &mut sink)?;
        // A validated non-empty range delivers every slice; only the empty
        // range arrives here without an allocation.
        Ok(sink
            .out
            .unwrap_or_else(|| Tensor2::zeros((end - start) as usize, self.d_model)))
    }

    /// Streams token rows `[start, end)` of `stream` to `sink`, one
    /// decoded chunk slice at a time, each delivered **as soon as its IO
    /// lands** — under chunk fanout that means in device-completion order,
    /// with up to the (adaptively capped) fanout width of reads in flight
    /// while earlier chunks are already being consumed.
    ///
    /// Semantics match [`StorageManager::read_rows`] exactly — same
    /// snapshot discipline, same decode helpers, same errors — because
    /// `read_rows` *is* this method plus an assembling sink. The
    /// generation guarantee is kept per delivered chunk: the snapshot's
    /// tombstone is revalidated after each chunk's IO, immediately before
    /// delivery; a mid-stream delete (even with a same-size re-append
    /// reusing the chunk keys) triggers [`RowSink::reset`] and a wholesale
    /// redelivery from the successor state, so a completed call never
    /// leaves the sink holding mixed-generation rows.
    pub fn read_rows_streaming(
        &self,
        stream: StreamId,
        start: u64,
        end: u64,
        sink: &mut dyn RowSink,
    ) -> Result<(), StorageError> {
        assert!(start <= end, "reversed range {start}..{end}");
        loop {
            // --- Locked phase: snapshot the cursors (+ tail if needed). ---
            let cell = self.stream_handle(stream);
            let (available, durable, tail) = match &cell {
                Some(cell) => {
                    let state = cell.read();
                    let available = state.n_tokens;
                    // The tail buffer is only needed when the range reaches
                    // past the durable prefix; clone it under the read lock
                    // so the quantization round-trip below runs lock-free.
                    let tail = if end > state.n_durable && !state.partial.is_empty() {
                        Some(state.partial.clone())
                    } else {
                        None
                    };
                    (available, state.n_durable, tail)
                }
                None => (0, 0, None),
            };
            if end > available {
                // A tombstoned cell reads as empty — the linearization
                // point is "just after the delete", like a sequential
                // read-after-delete.
                return Err(StorageError::OutOfRange {
                    stream,
                    available,
                    requested: end,
                });
            }
            if start == end {
                return Ok(());
            }

            // --- Lock-free phase: backend IO + decode, one delivery per
            // chunk slice. Reads fan out across devices when the adaptive
            // decision says the range profits from it; either path decodes
            // through the same helpers, so delivered bytes are identical.
            let slices = chunks_for_range(start, end);
            let plan = ReadPlan {
                stream,
                slices: &slices,
                durable,
                tail: tail.as_deref(),
                range_start: start,
            };
            let phase = if let Some(rp) = self.reactor_plan_for_range(&plan) {
                self.stream_slices_reactor(rp, &plan, &cell, sink)
            } else {
                match self.fanout_for_range(&plan) {
                    Some(fp) => self.stream_slices_fanout(fp, &plan, &cell, sink),
                    None => self.stream_slices_sequential(&plan, &cell, sink),
                }
            };

            match phase {
                Ok(StreamPhase::Done | StreamPhase::Cancelled) => return Ok(()),
                // Tombstoned mid-stream: everything delivered belongs to a
                // dead generation. Tell the sink, retry on the successor.
                Ok(StreamPhase::Restart) => {
                    sink.reset();
                    continue;
                }
                Err(e) => {
                    // Spurious MissingChunk from a concurrent wipe: retry
                    // against the successor state (same rule read_rows
                    // always had); a genuine error surfaces as-is.
                    if Self::cell_tombstoned(&cell) {
                        sink.reset();
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// True when the snapshot's cell has been tombstoned by a concurrent
    /// delete (a missing cell never was tombstoned: it reads as empty).
    fn cell_tombstoned(cell: &Option<Arc<RwLock<StreamState>>>) -> bool {
        cell.as_ref().is_some_and(|c| c.read().deleted)
    }

    /// The adaptive fanout decision for one planned read: `Some(plan)`
    /// when fanning out pays, `None` to read every chunk inline. The only
    /// question that matters is how many device *lanes* would actually be
    /// occupied by chunks that cost device time — DRAM-tier front hits
    /// ([`crate::backend::ChunkStore::chunk_in_fast_tier`]) complete at
    /// memcpy speed and are excluded (they are read inline by the calling
    /// thread either way, never queued on IO workers). A single occupied
    /// lane serializes on its device regardless of width (this also covers
    /// the ≤ 1 durable chunk and all-front-hits ranges), so only multi-
    /// lane reads draw on the pool; the effective width — the completion-
    /// channel staging bound — is capped at the occupied-lane count. The
    /// partition is built here once and handed to
    /// [`StorageManager::stream_slices_fanout`], so the decision and the
    /// submission walk the slices (and take the fast-tier probe's lock) a
    /// single time.
    fn fanout_for_range(&self, plan: &ReadPlan<'_>) -> Option<FanoutPlan<'_>> {
        let pool = self.fanout.as_ref()?;
        let n_dev = self.store.n_devices().max(1);
        let mut lanes: Vec<Vec<(usize, ChunkKey)>> = vec![Vec::new(); n_dev];
        let mut fast: Vec<(usize, ChunkKey)> = Vec::new();
        let mut lane_count = 0usize;
        for (i, slice) in plan.slices.iter().enumerate() {
            if Self::slice_is_durable(slice, plan.durable) {
                let key = ChunkKey {
                    stream: plan.stream,
                    chunk_idx: slice.chunk_idx,
                };
                if self.store.chunk_in_fast_tier(key) {
                    fast.push((i, key));
                } else {
                    let lane = device_for(&key, n_dev);
                    if lanes[lane].is_empty() {
                        lane_count += 1;
                    }
                    lanes[lane].push((i, key));
                }
            }
        }
        if lane_count <= 1 {
            return None;
        }
        Some(FanoutPlan {
            pool: pool.as_ref(),
            width: pool.width().min(lane_count),
            lanes,
            fast,
        })
    }

    /// True when every row of `slice` is covered by the durable cursor, so
    /// its bytes come from the backend rather than the snapshotted tail.
    fn slice_is_durable(slice: &ChunkSlice, durable: u64) -> bool {
        slice.chunk_idx as u64 * CHUNK_TOKENS + slice.start_in_chunk + slice.len <= durable
    }

    /// Validates and decodes one durable chunk's backend bytes. A chunk
    /// shorter than the snapshot promises (or torn to a non-row length)
    /// means the stream was wiped and restarted under this read — surface
    /// a retryable error instead of panicking in the decode/copy; the
    /// post-IO tombstone check decides whether to retry.
    fn decode_durable_chunk(
        &self,
        stream: StreamId,
        slice: &ChunkSlice,
        bytes: &[u8],
    ) -> Result<Vec<f32>, StorageError> {
        let per_row = self.precision.encoded_len(1, self.d_model);
        let have_rows = bytes.len() / per_row;
        if !bytes.len().is_multiple_of(per_row)
            || have_rows < (slice.start_in_chunk + slice.len) as usize
        {
            return Err(StorageError::MissingChunk {
                stream,
                chunk_idx: slice.chunk_idx,
            });
        }
        Ok(self
            .precision
            .decode_par(bytes, self.d_model, &self.parallel))
    }

    /// Rebuilds the tail chunk's rows from the snapshotted partial buffer,
    /// applying the same quantization round-trip a durable chunk carries.
    fn decode_tail(&self, partial: &[f32]) -> Vec<f32> {
        self.precision.decode_par(
            &self
                .precision
                .encode_par(partial, self.d_model, &self.parallel),
            self.d_model,
            &self.parallel,
        )
    }

    /// Packages one decoded chunk's rows as the slice's delivery payload.
    /// When the slice covers the whole decoded chunk the buffer is moved,
    /// not copied (the common case for interior chunks of a long read).
    fn slice_to_tensor(&self, slice: &ChunkSlice, rows: Vec<f32>) -> Tensor2 {
        let n = slice.len as usize;
        let src0 = slice.start_in_chunk as usize;
        if src0 == 0 && rows.len() == n * self.d_model {
            return Tensor2::from_vec(n, self.d_model, rows);
        }
        let mut out = Tensor2::zeros(n, self.d_model);
        for r in 0..n {
            out.row_mut(r)
                .copy_from_slice(&rows[(src0 + r) * self.d_model..(src0 + r + 1) * self.d_model]);
        }
        out
    }

    /// Revalidates the tombstone, then hands `slice`'s decoded rows to the
    /// sink. `Restart` when the generation died; `Cancelled` when the sink
    /// declined; `Done` when delivered.
    fn deliver_slice(
        &self,
        plan: &ReadPlan<'_>,
        cell: &Option<Arc<RwLock<StreamState>>>,
        sink: &mut dyn RowSink,
        slice_idx: usize,
        rows: Vec<f32>,
    ) -> StreamPhase {
        // Per-chunk generation check: a delete (+ possible re-append onto
        // the same chunk keys) that raced this chunk's IO set the
        // tombstone before any successor bytes could exist, so checking
        // here — after the IO, before the delivery — catches every mix.
        if Self::cell_tombstoned(cell) {
            return StreamPhase::Restart;
        }
        let slice = &plan.slices[slice_idx];
        let row_start = (slice.chunk_idx as u64 * CHUNK_TOKENS + slice.start_in_chunk
            - plan.range_start) as usize;
        let delivered = sink.deliver(DeliveredRows {
            slice_idx,
            row_start,
            rows: self.slice_to_tensor(slice, rows),
        });
        if delivered {
            StreamPhase::Done
        } else {
            StreamPhase::Cancelled
        }
    }

    /// The inline streaming walk: one chunk at a time from the calling
    /// thread, delivered in range order.
    fn stream_slices_sequential(
        &self,
        plan: &ReadPlan<'_>,
        cell: &Option<Arc<RwLock<StreamState>>>,
        sink: &mut dyn RowSink,
    ) -> Result<StreamPhase, StorageError> {
        for (i, slice) in plan.slices.iter().enumerate() {
            // Rows of this chunk that are durable come from the backend;
            // otherwise from the snapshotted partial buffer.
            let rows: Vec<f32> = if Self::slice_is_durable(slice, plan.durable) {
                let bytes = read_chunk_retrying(
                    self.store.as_ref(),
                    ChunkKey {
                        stream: plan.stream,
                        chunk_idx: slice.chunk_idx,
                    },
                    &self.retry,
                    &self.health,
                )?;
                self.decode_durable_chunk(plan.stream, slice, &bytes)?
            } else {
                // Tail chunk: buffer rows start at token n_durable ==
                // chunk_start_token for the tail.
                debug_assert_eq!(slice.chunk_idx as u64 * CHUNK_TOKENS, plan.durable);
                // hc-analyze: allow(panic) planner invariant: a slice past the durable cursor always snapshots a tail
                self.decode_tail(plan.tail.expect("range past durable implies tail"))
            };
            match self.deliver_slice(plan, cell, sink, i, rows) {
                StreamPhase::Done => {}
                other => return Ok(other),
            }
        }
        Ok(StreamPhase::Done)
    }

    /// The chunk-fanout streaming walk over a [`FanoutPlan`] (one lane per
    /// device — chunks on one device serialize there anyway, so per-device
    /// lanes are maximally parallel without queuing useless concurrency).
    /// The calling thread first serves the plan's DRAM-tier front hits
    /// inline (memcpy-speed — queueing them on IO workers would only add
    /// handoff latency, and their early delivery grows the consumer's
    /// contiguous prefix while the devices work), then validates, decodes
    /// and delivers each device chunk as its completion lands — in
    /// whatever order devices finish, which is safe because every slice
    /// owns a disjoint row range. The completion channel is bounded by
    /// the plan's effective width (≤ the occupied lanes), so raw chunk
    /// bytes never pile up faster than this reader decodes them.
    fn stream_slices_fanout(
        &self,
        fp: FanoutPlan<'_>,
        plan: &ReadPlan<'_>,
        cell: &Option<Arc<RwLock<StreamState>>>,
        sink: &mut dyn RowSink,
    ) -> Result<StreamPhase, StorageError> {
        let slices = plan.slices;
        let submitted: usize = fp.lanes.iter().map(|l| l.len()).sum();
        let (tx, rx) = bounded::<(usize, Result<Vec<u8>, StorageError>)>(fp.width);
        for lane in fp.lanes.into_iter().filter(|l| !l.is_empty()) {
            let store = Arc::clone(&self.store);
            let tx = tx.clone();
            let policy = self.retry;
            let health = Arc::clone(&self.health);
            fp.pool.submit(move || {
                for (i, key) in lane {
                    // Transient device blips retry inside the lane, so a
                    // flaky read costs backoff, not the whole range. A send
                    // error means this reader is gone; drop the lane's
                    // remaining reads.
                    let res = read_chunk_retrying(store.as_ref(), key, &policy, &health);
                    if tx.send((i, res)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);
        // Front hits inline, in range order, while the lanes' device IO is
        // already in flight. An error here does not return yet: the drain
        // below may surface a lower-index lane error, and the lanes must
        // finish cleanly either way.
        let mut first_err: Option<(usize, StorageError)> = None;
        let mut ended: Option<StreamPhase> = None;
        for (i, key) in fp.fast {
            match read_chunk_retrying(self.store.as_ref(), key, &self.retry, &self.health)
                .and_then(|bytes| self.decode_durable_chunk(plan.stream, &slices[i], &bytes))
            {
                Ok(rows) => match self.deliver_slice(plan, cell, sink, i, rows) {
                    StreamPhase::Done => {}
                    other => {
                        ended = Some(other);
                        break;
                    }
                },
                Err(e) => {
                    // Lowest-index determinism: later fast chunks cannot
                    // have a lower index, so stop reading them.
                    first_err = Some((i, e));
                    break;
                }
            }
        }
        // On failure keep draining completions so the lowest-index error
        // wins — the same error a sequential walk would have surfaced
        // first (deterministic regardless of device timing). A restart or
        // cancellation also drains (cheaply, without decoding) so the
        // lanes finish cleanly instead of aborting mid-stream.
        for _ in 0..submitted {
            // A dropped completion means a fanout worker died mid-job
            // (its catch_unwind can only lose the sender on an unwind
            // outside the job): surface a typed error, not an abort.
            let Ok((i, res)) = rx.recv() else {
                return Err(StorageError::Io(
                    "fanout lane dropped a completion (worker lost)".to_string(),
                ));
            };
            if ended.is_some() {
                continue;
            }
            match res.and_then(|bytes| self.decode_durable_chunk(plan.stream, &slices[i], &bytes)) {
                Ok(rows) => {
                    if first_err.is_none() {
                        match self.deliver_slice(plan, cell, sink, i, rows) {
                            StreamPhase::Done => {}
                            other => ended = Some(other),
                        }
                    }
                }
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        if let Some(phase) = ended {
            return Ok(phase);
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        // The tail slice (at most one, always last) never touches the
        // backend; rebuild it inline like the sequential walk does.
        if let Some(slice) = slices
            .last()
            .filter(|s| !Self::slice_is_durable(s, plan.durable))
        {
            debug_assert_eq!(slice.chunk_idx as u64 * CHUNK_TOKENS, plan.durable);
            let rows = // hc-analyze: allow(panic) planner invariant: a slice past the durable cursor always snapshots a tail
                self.decode_tail(plan.tail.expect("range past durable implies tail"));
            let i = slices.len() - 1;
            match self.deliver_slice(plan, cell, sink, i, rows) {
                StreamPhase::Done => {}
                other => return Ok(other),
            }
        }
        Ok(StreamPhase::Done)
    }

    /// Partitions a planned range for the reactor: every durable chunk
    /// that occupies a device (ascending slice order, tagged with its
    /// owning device), fast-tier front hits separately, plus the in-flight
    /// window (`iodepth × occupied devices`, capped at the chunk count).
    fn reactor_partition(
        &self,
        plan: &ReadPlan<'_>,
        iodepth: usize,
    ) -> (DeviceChunks, FastChunks, usize) {
        let n_dev = self.store.n_devices().max(1);
        let mut device_chunks: Vec<(usize, ChunkKey, usize)> = Vec::new();
        let mut fast: Vec<(usize, ChunkKey)> = Vec::new();
        let mut occupied: HashSet<usize> = HashSet::new();
        for (i, slice) in plan.slices.iter().enumerate() {
            if Self::slice_is_durable(slice, plan.durable) {
                let key = ChunkKey {
                    stream: plan.stream,
                    chunk_idx: slice.chunk_idx,
                };
                if self.store.chunk_in_fast_tier(key) {
                    fast.push((i, key));
                } else {
                    let device = device_for(&key, n_dev);
                    occupied.insert(device);
                    device_chunks.push((i, key, device));
                }
            }
        }
        let window = (iodepth * occupied.len().max(1))
            .min(device_chunks.len())
            .max(1);
        (device_chunks, fast, window)
    }

    /// The adaptive reactor decision for one planned read: `Some(plan)`
    /// when at least two chunks occupy devices (a single device-occupying
    /// chunk serializes anyway, and fast-tier hits are read inline either
    /// way), `None` to fall through to fanout/sequential. An attached
    /// reactor takes precedence over a fanout pool.
    fn reactor_plan_for_range(&self, plan: &ReadPlan<'_>) -> Option<ReactorPlan> {
        let reactor = self.reactor.as_ref()?;
        let (device_chunks, fast, window) = self.reactor_partition(plan, reactor.iodepth());
        if device_chunks.len() <= 1 {
            return None;
        }
        Some(ReactorPlan {
            device_chunks,
            fast,
            window,
        })
    }

    /// The reactor streaming walk: device chunks are submitted to the
    /// per-device queues in ascending slice order with at most
    /// `rp.window` in flight; the calling thread serves fast-tier front
    /// hits inline, then validates, decodes and delivers each chunk as
    /// its completion lands, topping the window back up after every
    /// completion. Ascending submission keeps the lowest-index-error
    /// determinism argument of the fanout path: any chunk not yet
    /// submitted has a higher slice index than every submitted one, so
    /// draining the in-flight set always surfaces the same error the
    /// sequential walk would have hit first.
    ///
    /// Unlike [`FanoutPool`] lanes, IO threads never block on this
    /// reader's completion channel (its capacity equals the window, and
    /// at most `window` completions are outstanding), so a slow consumer
    /// cannot head-of-line block other readers sharing the device queues.
    fn stream_slices_reactor(
        &self,
        rp: ReactorPlan,
        plan: &ReadPlan<'_>,
        cell: &Option<Arc<RwLock<StreamState>>>,
        sink: &mut dyn RowSink,
    ) -> Result<StreamPhase, StorageError> {
        // hc-analyze: allow(panic) invariant: a ReactorPlan is only built when the manager has a reactor
        let reactor = self.reactor.as_ref().expect("plan implies reactor");
        let slices = plan.slices;
        let total = rp.device_chunks.len();
        let (tx, rx) = bounded::<(usize, Result<Vec<u8>, StorageError>)>(rp.window);
        let mut next = 0usize;
        let mut in_flight = 0usize;
        // Outstanding submissions by slice index. A deadline breach blames
        // the lowest outstanding chunk — the one the sequential walk would
        // be stuck on — so the synthesized error is deterministic.
        let mut outstanding: BTreeMap<usize, (ChunkKey, usize)> = BTreeMap::new();
        let submit_next =
            |next: &mut usize,
             in_flight: &mut usize,
             outstanding: &mut BTreeMap<usize, (ChunkKey, usize)>| {
                let (i, key, device) = rp.device_chunks[*next];
                *next += 1;
                *in_flight += 1;
                outstanding.insert(i, (key, device));
                let store = Arc::clone(&self.store);
                let policy = self.retry;
                let health = Arc::clone(&self.health);
                let tx = tx.clone();
                reactor.submit_io(device, move || {
                    // A panicking store must not strand the reader waiting on
                    // a completion that never comes: convert to a typed error.
                    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        read_chunk_retrying(store.as_ref(), key, &policy, &health)
                    }))
                    .unwrap_or_else(|_| {
                        Err(StorageError::Io(format!(
                            "chunk read panicked (chunk {} of {:?})",
                            key.chunk_idx, key.stream
                        )))
                    });
                    let _ = tx.send((i, res));
                });
            };
        while in_flight < rp.window && next < total {
            submit_next(&mut next, &mut in_flight, &mut outstanding);
        }
        // Front hits inline while device IO is in flight (same rationale
        // as the fanout path).
        let mut first_err: Option<(usize, StorageError)> = None;
        let mut ended: Option<StreamPhase> = None;
        for (i, key) in rp.fast.iter().copied() {
            match read_chunk_retrying(self.store.as_ref(), key, &self.retry, &self.health)
                .and_then(|bytes| self.decode_durable_chunk(plan.stream, &slices[i], &bytes))
            {
                Ok(rows) => match self.deliver_slice(plan, cell, sink, i, rows) {
                    StreamPhase::Done => {}
                    other => {
                        ended = Some(other);
                        break;
                    }
                },
                Err(e) => {
                    first_err = Some((i, e));
                    break;
                }
            }
        }
        // Drain in-flight completions; keep the window topped up while
        // healthy. On error/restart/cancel, submission stops and the
        // remaining in-flight chunks drain cheaply.
        while in_flight > 0 {
            // A dropped completion means a reactor IO thread died: surface
            // a typed error instead of aborting the read path. Under an IO
            // deadline a stalled submission times out into the typed
            // transient DeviceFailed path (counted as a stall against the
            // lane's breaker) instead of wedging this reader; the
            // abandoned completions cannot block their IO threads (the
            // channel's capacity equals the window) and are dropped with
            // the receiver.
            let recvd = match self.retry.io_deadline {
                Some(deadline) => match rx.recv_timeout(deadline) {
                    Ok(v) => Some(v),
                    Err(RecvTimeoutError::Timeout) => {
                        let (_, &(key, device)) = outstanding
                            .iter()
                            .next()
                            // hc-analyze: allow(panic) invariant: in_flight > 0 implies an outstanding entry
                            .expect("in-flight read with no outstanding entry");
                        self.health.record_stall(device);
                        return Err(StorageError::DeviceFailed {
                            key,
                            device,
                            transient: true,
                            msg: format!(
                                "io deadline {deadline:?} exceeded with {in_flight} reads in flight"
                            ),
                        });
                    }
                    Err(RecvTimeoutError::Disconnected) => None,
                },
                None => rx.recv().ok(),
            };
            let Some((i, res)) = recvd else {
                return Err(StorageError::Io(
                    "reactor dropped a completion (IO thread lost)".to_string(),
                ));
            };
            in_flight -= 1;
            outstanding.remove(&i);
            if ended.is_none() && first_err.is_none() && next < total {
                submit_next(&mut next, &mut in_flight, &mut outstanding);
            }
            if ended.is_some() {
                continue;
            }
            match res.and_then(|bytes| self.decode_durable_chunk(plan.stream, &slices[i], &bytes)) {
                Ok(rows) => {
                    if first_err.is_none() {
                        match self.deliver_slice(plan, cell, sink, i, rows) {
                            StreamPhase::Done => {}
                            other => ended = Some(other),
                        }
                    }
                }
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        if let Some(phase) = ended {
            return Ok(phase);
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        // Tail slice inline, exactly like the other walks.
        if let Some(slice) = slices
            .last()
            .filter(|s| !Self::slice_is_durable(s, plan.durable))
        {
            debug_assert_eq!(slice.chunk_idx as u64 * CHUNK_TOKENS, plan.durable);
            let rows = // hc-analyze: allow(panic) planner invariant: a slice past the durable cursor always snapshots a tail
                self.decode_tail(plan.tail.expect("range past durable implies tail"));
            let i = slices.len() - 1;
            match self.deliver_slice(plan, cell, sink, i, rows) {
                StreamPhase::Done => {}
                other => return Ok(other),
            }
        }
        Ok(StreamPhase::Done)
    }

    /// Begins an **asynchronous** streaming read of `[start, end)` driven
    /// by the attached reactor: the per-restore read state machine
    /// (`planned → submitted → decoded → placed`).
    ///
    /// The returned job immediately owns no thread. Device IO is
    /// submitted (ascending, windowed) on the first [`ReactorReadJob::pump`];
    /// each completion stages its raw bytes on the job and fires `notify`.
    /// The owner — typically a restore driver's compute worker pool —
    /// responds to `notify` by calling `pump` with its sink, which
    /// validates/decodes/delivers every staged chunk through the exact
    /// helpers the sequential walk uses (bit-identical output), restarts
    /// the pass on a mid-read tombstone (after `sink.reset()`), and
    /// resolves errors to the lowest slice index once the window drains.
    ///
    /// Caller contract: `pump` must not run concurrently for one job (the
    /// driver's run-queue serialization provides this); `notify` must be
    /// cheap and non-blocking (push a token, nothing more).
    ///
    /// # Panics
    /// Panics when no reactor is attached, or on a reversed range.
    pub fn begin_read_reactor(
        self: &Arc<Self>,
        stream: StreamId,
        start: u64,
        end: u64,
        notify: Arc<dyn Fn() + Send + Sync>,
    ) -> Arc<ReactorReadJob<S>> {
        assert!(start <= end, "reversed range {start}..{end}");
        assert!(
            self.reactor.is_some(),
            "begin_read_reactor requires a manager with_reactor"
        );
        Arc::new(ReactorReadJob {
            mgr: Arc::clone(self),
            stream,
            start,
            end,
            notify,
            core: parking_lot::Mutex::new(JobCore {
                pass: None,
                epoch: 0,
                staged: std::collections::VecDeque::new(),
                in_flight: 0,
                in_flight_keys: BTreeMap::new(),
                last_progress: std::time::Instant::now(),
                next_submit: 0,
                halted: false,
                first_err: None,
                delivered: 0,
                fast_done: false,
                tail_done: false,
                terminal: None,
            }),
        })
    }

    /// Backend bytes currently held by `stream` (durable chunks including
    /// the flushed tail; rows still sitting in the partial buffer occupy no
    /// backend bytes until a flush).
    pub fn stream_bytes(&self, stream: StreamId) -> u64 {
        self.stream_handle(stream)
            .map_or(0, |c| c.read().resident_bytes)
    }

    /// State cells of every stream of `session` (map lock released before
    /// any per-stream lock is taken).
    fn session_handles(&self, session: u64) -> Vec<Arc<RwLock<StreamState>>> {
        self.streams
            .read()
            .iter()
            .filter(|(id, _)| id.session == session)
            .map(|(_, c)| Arc::clone(c))
            .collect()
    }

    /// Backend bytes currently held by every stream of `session` — the
    /// figure a quota tracker charges, and exactly what
    /// [`StorageManager::delete_session`] will report as freed.
    pub fn session_bytes(&self, session: u64) -> u64 {
        self.session_handles(session)
            .iter()
            .map(|c| c.read().resident_bytes)
            .sum()
    }

    /// Devices the durable chunks of `stream` currently occupy, ascending
    /// and deduplicated — chunks resident in a DRAM front tier are
    /// excluded (they restore without touching their device). The
    /// controller's degradation plane uses this to decide which sessions
    /// a sick device actually affects.
    pub fn stream_devices(&self, stream: StreamId) -> Vec<usize> {
        let Some(cell) = self.stream_handle(stream) else {
            return Vec::new();
        };
        let (n_durable, tail_bytes) = {
            let state = cell.read();
            (state.n_durable, state.tail_bytes)
        };
        let n_dev = self.store.n_devices().max(1);
        let n_full = (n_durable / CHUNK_TOKENS) as u32;
        let mut devices: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for chunk_idx in 0..n_full + u32::from(tail_bytes > 0) {
            let key = ChunkKey { stream, chunk_idx };
            if !self.store.chunk_in_fast_tier(key) {
                devices.insert(device_for(&key, n_dev));
            }
        }
        devices.into_iter().collect()
    }

    /// Backend bytes currently held across all streams. Served from an
    /// atomic — no lock taken, so capacity control planes (hc-cachectl's
    /// `QuotaTracker`) can poll it without stalling stream IO.
    pub fn total_resident_bytes(&self) -> u64 {
        self.total_resident.load(Ordering::Acquire)
    }

    /// Distinct sessions with any tracked stream state, ascending.
    pub fn sessions(&self) -> Vec<u64> {
        self.streams
            .read()
            .keys()
            .map(|s| s.session)
            .collect::<std::collections::BTreeSet<u64>>()
            .into_iter()
            .collect()
    }

    /// Deletes one stream (tracked state + backend chunks); returns bytes
    /// freed in the backend. This is the cache controller's demotion
    /// primitive: dropping a layer's hidden/K/V stream while leaving the
    /// session's other streams intact.
    ///
    /// Concurrent appends to the same stream land either entirely before
    /// the wipe (their bytes are counted in both the freed figure and the
    /// backend sweep) or entirely after it (they restart the stream on a
    /// fresh state cell) — never astride it, so the returned figure always
    /// equals what the tracking APIs reported. Concurrent reads of the
    /// deleted stream surface `MissingChunk`/`OutOfRange`, never torn data.
    pub fn delete_stream(&self, stream: StreamId) -> u64 {
        if let Some(cell) = self.stream_handle(stream) {
            let mut state = cell.write();
            if !state.deleted {
                // Tombstone + wipe under the stream write lock: a writer
                // retrying onto a fresh cell cannot touch the backend
                // until the wipe below has finished (it must first observe
                // the tombstone, which requires this lock).
                state.deleted = true;
                let tracked = state.resident_bytes;
                state.resident_bytes = 0;
                state.tail_bytes = 0;
                state.partial = Vec::new();
                state.n_tokens = 0;
                state.n_durable = 0;
                self.total_resident.fetch_sub(tracked, Ordering::AcqRel);
                // Log, then wipe: a crash between the two leaves orphan
                // chunks of a dead generation (swept at recovery), never a
                // resurrected stream. The append is best-effort — this
                // method reports freed bytes, and a journal IO error must
                // not leave the tombstoned state unwiped.
                if let Some(journal) = &self.journal {
                    let _ = journal.log_delete(stream);
                }
                let freed = self.store.delete_stream(stream);
                debug_assert_eq!(
                    freed, tracked,
                    "resident-byte tracking diverged from the backend for {stream:?}"
                );
                drop(state);
                // Unlink the dead cell unless a retrying writer already
                // replaced it with a live successor.
                let mut map = self.streams.write();
                if map.get(&stream).is_some_and(|cur| Arc::ptr_eq(cur, &cell)) {
                    map.remove(&stream);
                }
                return freed;
            }
            // Already tombstoned by a racing delete: that call owns the
            // backend sweep; this one freed nothing.
            return 0;
        }
        // Never tracked: nothing to free. Every backend write goes through
        // a tracked cell (and tombstoned cells are wiped before their
        // tombstone is observable), so an unconditional backend sweep here
        // would only ever race a concurrent *first* append — deleting its
        // freshly written chunks out from under live accounting. Returning
        // 0 is the sequential delete-before-append linearization.
        0
    }

    /// Deletes all state of `session`; returns bytes freed in the backend.
    /// The count equals the sum the tracking APIs reported
    /// ([`StorageManager::session_bytes`]), so callers can release quota by
    /// exactly this amount.
    pub fn delete_session(&self, session: u64) -> u64 {
        let ids: Vec<StreamId> = {
            let streams = self.streams.read();
            streams
                .keys()
                .filter(|s| s.session == session)
                .cloned()
                .collect()
        };
        ids.into_iter().map(|id| self.delete_stream(id)).sum()
    }

    /// Backend IO statistics.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Rebuilds a journaled manager over `store` from the journal under
    /// `root` — the generic form of [`StorageManager::reopen`] for
    /// wrapped backends (e.g. a [`crate::fault::FaultStore`] around the
    /// reopened [`FileStore`]). `store` must expose the same chunks the
    /// journal describes and stripe over the journaled device count.
    pub fn recover(
        store: Arc<S>,
        root: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), StorageError> {
        let (journal, replay) = Journal::reopen(root.as_ref(), true)?;
        if store.n_devices() != replay.header.n_devices {
            return Err(StorageError::Io(format!(
                "recovery: store stripes over {} devices but the journal was written with {}",
                store.n_devices(),
                replay.header.n_devices
            )));
        }
        Self::recover_replayed(store, Arc::new(journal), replay)
    }

    /// The recovery pass proper: folds the replayed records into each
    /// stream's expected chunk list, validates every chunk against the
    /// backend (truncating at the first torn one), rebuilds the stream
    /// states and sweeps orphan chunks. See the module docs for the full
    /// protocol.
    fn recover_replayed(
        store: Arc<S>,
        journal: Arc<Journal>,
        replay: JournalReplay,
    ) -> Result<(Self, RecoveryReport), StorageError> {
        /// Per-stream fold of the journal: the full chunks (byte length +
        /// CRC, indexed by chunk idx) and the current tail commit.
        #[derive(Default)]
        struct Fold {
            full: Vec<(u64, u32)>,
            tail: Option<(u32, u64, u32)>,
        }

        let header = replay.header;
        let mgr =
            Self::with_precision(store, header.d_model, header.precision).with_journal(journal);

        let mut folds: HashMap<StreamId, Fold> = HashMap::new();
        for rec in &replay.records {
            match *rec {
                JournalRecord::Commit {
                    stream,
                    chunk_idx,
                    rows,
                    is_tail,
                    byte_len,
                    chunk_crc,
                    ..
                } => {
                    let fold = folds.entry(stream).or_default();
                    // Chunks commit strictly in index order; an
                    // out-of-order record is journal corruption that
                    // slipped past the frame CRC — drop it rather than
                    // fabricate stream state.
                    if chunk_idx as usize != fold.full.len() {
                        continue;
                    }
                    if is_tail {
                        // A later tail commit supersedes the earlier image
                        // at the same index (re-flush replaces in place).
                        fold.tail = Some((rows, byte_len, chunk_crc));
                    } else {
                        // The full chunk absorbs any flushed tail at its
                        // index.
                        fold.full.push((byte_len, chunk_crc));
                        fold.tail = None;
                    }
                }
                // Delete wipes the stream; later commits restart it from
                // chunk 0 on a fresh fold.
                JournalRecord::Delete { stream, .. } => {
                    folds.remove(&stream);
                }
                // Compaction's generation baseline carries no chunk
                // state; the journal consumes it when seeding counters.
                JournalRecord::Gen { .. } => {}
            }
        }

        let mut report = RecoveryReport {
            journal_bytes_truncated: replay.truncated,
            ..RecoveryReport::default()
        };
        let mut live: HashSet<ChunkKey> = HashSet::new();
        let mut total: u64 = 0;
        for (stream, fold) in folds {
            let mut n_full = 0usize;
            let mut resident = 0u64;
            let mut truncated_stream = false;
            for (i, &(byte_len, crc)) in fold.full.iter().enumerate() {
                let key = ChunkKey {
                    stream,
                    chunk_idx: i as u32,
                };
                if let Some(bytes) = mgr.recover_validate_chunk(key, byte_len, crc) {
                    n_full = i + 1;
                    resident += byte_len;
                    live.insert(key);
                    report.chunks_recovered += 1;
                    // Re-warm a tiered backend's DRAM front through its
                    // normal admission policy — the validated bytes are in
                    // hand anyway, so a restart does not begin cold.
                    report.front_warmed_bytes += mgr.store.warm_chunk(key, &bytes);
                } else {
                    // Torn/missing: keep the consistent prefix, drop this
                    // chunk, everything after it and the tail.
                    report.torn_chunks_discarded +=
                        (fold.full.len() - i) + usize::from(fold.tail.is_some());
                    truncated_stream = true;
                    break;
                }
            }
            let mut partial: Vec<f32> = Vec::new();
            let mut tail_bytes = 0u64;
            let mut tail_rows = 0u64;
            if !truncated_stream {
                if let Some((rows, byte_len, crc)) = fold.tail {
                    let key = ChunkKey {
                        stream,
                        chunk_idx: n_full as u32,
                    };
                    let validated = mgr.recover_validate_chunk(key, byte_len, crc);
                    let decoded = validated
                        .as_deref()
                        .map(|bytes| mgr.precision.decode_par(bytes, mgr.d_model, &mgr.parallel));
                    match decoded {
                        Some(rows_f32) if rows_f32.len() == rows as usize * mgr.d_model => {
                            partial = rows_f32;
                            tail_bytes = byte_len;
                            tail_rows = rows as u64;
                            resident += byte_len;
                            live.insert(key);
                            report.chunks_recovered += 1;
                            if let Some(bytes) = &validated {
                                report.front_warmed_bytes += mgr.store.warm_chunk(key, bytes);
                            }
                        }
                        _ => report.torn_chunks_discarded += 1,
                    }
                }
            }
            if n_full == 0 && tail_rows == 0 {
                // Nothing of the stream survived; its stray files (if
                // any) fall to the orphan sweep.
                continue;
            }
            report.streams_recovered += 1;
            let n_durable = n_full as u64 * CHUNK_TOKENS;
            let state = StreamState {
                n_tokens: n_durable + tail_rows,
                n_durable,
                partial,
                resident_bytes: resident,
                tail_bytes,
                deleted: false,
            };
            total += resident;
            mgr.streams
                .write()
                .insert(stream, Arc::new(RwLock::new(state)));
        }

        // Orphan sweep: chunks the backend holds but no surviving record
        // names — unjournaled writes the crash outran, wipes the crash
        // interrupted, or truncated suffixes.
        for key in mgr.store.chunk_keys() {
            if !live.contains(&key) {
                mgr.store.delete_chunk(key);
                report.orphan_chunks_removed += 1;
            }
        }
        mgr.total_resident.store(total, Ordering::Release);
        report.resident_bytes = total;
        Ok((mgr, report))
    }

    /// Validates one journaled chunk against the backend: present, at
    /// least the journaled length, and CRC-matching over the journaled
    /// prefix. A longer backend image with a matching prefix (a durable
    /// re-flush that outran its journal record) is trimmed back to the
    /// journaled bytes so the resident accounting stays exact. `None`
    /// means torn/missing — the caller truncates the stream here.
    fn recover_validate_chunk(&self, key: ChunkKey, byte_len: u64, crc: u32) -> Option<Vec<u8>> {
        let mut bytes =
            read_chunk_retrying(self.store.as_ref(), key, &self.retry, &self.health).ok()?;
        let want = byte_len as usize;
        if bytes.len() < want || crc32(&bytes[..want]) != crc {
            return None;
        }
        if bytes.len() > want {
            bytes.truncate(want);
            self.store.write_chunk(key, &bytes).ok()?;
        }
        Some(bytes)
    }
}

impl StorageManager<FileStore> {
    /// Creates a crash-durable manager: a fresh [`FileStore`] under
    /// `root` (fsyncing writes) plus a fresh journal, so
    /// [`StorageManager::reopen`] can rebuild the manager after a crash.
    pub fn create_durable(
        root: impl Into<std::path::PathBuf>,
        n_devices: usize,
        d_model: usize,
        precision: Precision,
    ) -> Result<Self, StorageError> {
        let root = root.into();
        let store = Arc::new(FileStore::new(&root, n_devices)?);
        let journal = Arc::new(Journal::create(
            &root,
            JournalHeader {
                d_model,
                n_devices,
                precision,
            },
            true,
        )?);
        Ok(Self::with_precision(store, d_model, precision).with_journal(journal))
    }

    /// Reopens a crash-durable store root: replays the journal (itself
    /// truncated past any torn tail), rescans the chunk files, and
    /// rebuilds every stream's durable cursor, partial tail and exact
    /// resident-byte accounting — the kill-and-reopen path. The report
    /// says what was recovered and what the crash tore.
    pub fn reopen(root: impl AsRef<Path>) -> Result<(Self, RecoveryReport), StorageError> {
        let (journal, replay) = Journal::reopen(root.as_ref(), true)?;
        let store = Arc::new(FileStore::open(root.as_ref(), replay.header.n_devices)?);
        Self::recover_replayed(store, Arc::new(journal), replay)
    }
}

/// Progress of one asynchronous reactor read after a
/// [`ReactorReadJob::pump`] pass.
#[derive(Debug)]
pub enum PumpOutcome {
    /// IO is still in flight; another `notify` → `pump` round will follow.
    Pending,
    /// Every slice (and the tail) was delivered; the job is finished.
    /// Terminal and sticky — later pumps return `Done` again.
    Done,
    /// The read failed after its in-flight window drained; the error is
    /// the lowest-slice-index one, exactly what the sequential walk would
    /// have surfaced first. Terminal and sticky.
    Failed(StorageError),
}

/// Pass-immutable snapshot of one attempt at the range: built under the
/// brief stream read lock (same discipline as `read_rows_streaming`),
/// then shared by pump passes so decode runs with no job lock held.
struct JobPass {
    slices: Vec<ChunkSlice>,
    durable: u64,
    tail: Option<Vec<f32>>,
    cell: Option<Arc<RwLock<StreamState>>>,
    /// `(slice_idx, key, device)` of device-occupying chunks, ascending.
    device_chunks: Vec<(usize, ChunkKey, usize)>,
    /// `(slice_idx, key)` of fast-tier front hits, ascending.
    fast: Vec<(usize, ChunkKey)>,
    /// In-flight submission window (also bounds staged raw bytes).
    window: usize,
}

/// Mutable state of one async read job, guarded by the job mutex. The
/// lock is held for staging/bookkeeping only — never across backend IO
/// or decode.
struct JobCore {
    /// Current pass; `None` before the first pump and between a tombstone
    /// restart and the next pump.
    pass: Option<Arc<JobPass>>,
    /// Fences off completions of abandoned passes: submissions carry the
    /// epoch they were issued under, and stale completions are dropped.
    epoch: u64,
    /// Raw completions awaiting decode, in completion order.
    staged: std::collections::VecDeque<(usize, Result<Vec<u8>, StorageError>)>,
    in_flight: usize,
    /// Outstanding submissions by slice index, for stall attribution:
    /// [`ReactorReadJob::expire_stalled`] blames the lowest one.
    in_flight_keys: BTreeMap<usize, (ChunkKey, usize)>,
    /// Last time this pass made observable progress (a submission or a
    /// completion) — the reference point IO deadlines measure from.
    last_progress: std::time::Instant,
    /// Next index into `pass.device_chunks` to submit.
    next_submit: usize,
    /// An error was observed; stop topping up the window and let the
    /// in-flight chunks drain so the lowest-index error wins.
    halted: bool,
    first_err: Option<(usize, StorageError)>,
    /// Device chunks delivered this pass.
    delivered: usize,
    fast_done: bool,
    tail_done: bool,
    /// Sticky final result; set exactly once.
    terminal: Option<Result<(), StorageError>>,
}

/// The per-read state machine of the event-driven read path: each chunk
/// advances `planned` (in `pass.device_chunks`, not yet submitted) →
/// `submitted` (in its device queue / in flight) → `decoded` (staged
/// bytes validated + decoded on a pump pass) → `placed` (delivered to the
/// sink). Created by [`StorageManager::begin_read_reactor`]; see there
/// for the ownership contract.
pub struct ReactorReadJob<S: ChunkStore> {
    mgr: Arc<StorageManager<S>>,
    stream: StreamId,
    start: u64,
    end: u64,
    /// Fired (outside the job lock) whenever completions are staged; the
    /// owner responds by scheduling a pump.
    notify: Arc<dyn Fn() + Send + Sync>,
    core: parking_lot::Mutex<JobCore>,
}

/// What one pump iteration decided to do, resolved under the job lock
/// and executed (IO, decode, delivery) after releasing it.
enum PumpStep {
    /// State changed under the lock; re-decide.
    Continue,
    Done,
    Failed(StorageError),
    Pending,
    /// Decode + deliver this batch (and the fast front hits first, when
    /// `fast_todo`).
    Batch {
        pass: Arc<JobPass>,
        batch: Vec<(usize, Result<Vec<u8>, StorageError>)>,
        fast_todo: bool,
        /// An earlier pass already recorded an error: drain without
        /// delivering (mirrors the fanout drain's post-error behavior).
        prior_failed: bool,
    },
    /// All device chunks placed; rebuild and deliver the tail slice.
    Tail(Arc<JobPass>),
}

impl<S: ChunkStore> ReactorReadJob<S> {
    /// The stream this job reads.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// The half-open token range this job reads.
    pub fn range(&self) -> (u64, u64) {
        (self.start, self.end)
    }

    /// Starts a pass: snapshot the stream (brief read lock), plan the
    /// range, submit the initial window. Caller holds the core lock.
    fn start_pass(self: &Arc<Self>, core: &mut JobCore) -> Result<(), StorageError> {
        let mgr = &self.mgr;
        let cell = mgr.stream_handle(self.stream);
        let (available, durable, tail) = match &cell {
            Some(cell) => {
                let state = cell.read();
                let available = state.n_tokens;
                let tail = if self.end > state.n_durable && !state.partial.is_empty() {
                    Some(state.partial.clone())
                } else {
                    None
                };
                (available, state.n_durable, tail)
            }
            None => (0, 0, None),
        };
        if self.end > available {
            return Err(StorageError::OutOfRange {
                stream: self.stream,
                available,
                requested: self.end,
            });
        }
        let slices = chunks_for_range(self.start, self.end);
        // hc-analyze: allow(panic) invariant: begin_read_reactor requires a manager with a reactor
        let iodepth = mgr.reactor.as_ref().expect("job implies reactor").iodepth();
        let (device_chunks, fast, window) = {
            let plan = ReadPlan {
                stream: self.stream,
                slices: &slices,
                durable,
                tail: tail.as_deref(),
                range_start: self.start,
            };
            mgr.reactor_partition(&plan, iodepth)
        };
        core.epoch += 1;
        core.staged.clear();
        core.in_flight = 0;
        core.in_flight_keys.clear();
        core.last_progress = std::time::Instant::now();
        core.next_submit = 0;
        core.halted = false;
        core.first_err = None;
        core.delivered = 0;
        core.fast_done = false;
        core.tail_done = false;
        let pass = Arc::new(JobPass {
            slices,
            durable,
            tail,
            cell,
            device_chunks,
            fast,
            window,
        });
        core.pass = Some(Arc::clone(&pass));
        while core.in_flight < pass.window && core.next_submit < pass.device_chunks.len() {
            self.submit_one(core, &pass);
        }
        Ok(())
    }

    /// Submits the next planned chunk to its device queue (a channel
    /// send — never blocks). Caller holds the core lock.
    fn submit_one(self: &Arc<Self>, core: &mut JobCore, pass: &Arc<JobPass>) {
        let (i, key, device) = pass.device_chunks[core.next_submit];
        core.next_submit += 1;
        core.in_flight += 1;
        core.in_flight_keys.insert(i, (key, device));
        core.last_progress = std::time::Instant::now();
        let epoch = core.epoch;
        let job = Arc::clone(self);
        let store = Arc::clone(&self.mgr.store);
        let policy = self.mgr.retry;
        let health = Arc::clone(&self.mgr.health);
        self.mgr
            .reactor
            .as_ref()
            // hc-analyze: allow(panic) invariant: begin_read_reactor requires a manager with a reactor
            .expect("job implies reactor")
            .submit_io(device, move || {
                // A panicking store must not strand the machine on a
                // completion that never comes: convert to a typed error.
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    read_chunk_retrying(store.as_ref(), key, &policy, &health)
                }))
                .unwrap_or_else(|_| {
                    Err(StorageError::Io(format!(
                        "chunk read panicked (chunk {} of {:?})",
                        key.chunk_idx, key.stream
                    )))
                });
                job.complete_io(epoch, i, res);
            });
    }

    /// IO-thread side of a completion: stage the raw bytes, top the
    /// window back up, fire `notify`. Stale-epoch completions (from a
    /// pass abandoned by a tombstone restart) are dropped.
    fn complete_io(
        self: &Arc<Self>,
        epoch: u64,
        slice_idx: usize,
        res: Result<Vec<u8>, StorageError>,
    ) {
        {
            let mut core = self.core.lock();
            if core.epoch != epoch || core.terminal.is_some() {
                return;
            }
            core.in_flight -= 1;
            core.in_flight_keys.remove(&slice_idx);
            core.last_progress = std::time::Instant::now();
            if res.is_err() {
                core.halted = true;
            }
            core.staged.push_back((slice_idx, res));
            if !core.halted {
                if let Some(pass) = core.pass.clone() {
                    if core.next_submit < pass.device_chunks.len() {
                        self.submit_one(&mut core, &pass);
                    }
                }
            }
        }
        (self.notify)();
    }

    /// Times out a stalled pass: when IO has been in flight with no
    /// completion for at least `deadline`, the lowest outstanding chunk
    /// is blamed with a typed transient [`StorageError::DeviceFailed`]
    /// (counted as a stall against its lane's breaker), the epoch bump
    /// fences off the pass's late completions, and the next
    /// [`ReactorReadJob::pump`] resolves to `Failed` — the driver's
    /// degradation path, not a wedged lane. Returns whether the job
    /// expired (callers pump expired jobs). No-op on jobs that are
    /// terminal, between passes, idle, or still making progress.
    pub fn expire_stalled(&self, deadline: Duration) -> bool {
        let mut core = self.core.lock();
        if core.terminal.is_some()
            || core.pass.is_none()
            || core.in_flight == 0
            || core.last_progress.elapsed() < deadline
        {
            return false;
        }
        let (&i, &(key, device)) = core
            .in_flight_keys
            .iter()
            .next()
            // hc-analyze: allow(panic) invariant: in_flight > 0 implies an outstanding entry
            .expect("in-flight read with no outstanding entry");
        let in_flight = core.in_flight;
        // Fence: late completions of this pass carry the old epoch and are
        // dropped, so zeroing the window here cannot underflow.
        core.epoch += 1;
        core.staged.clear();
        core.in_flight = 0;
        core.in_flight_keys.clear();
        core.halted = true;
        if core.first_err.as_ref().is_none_or(|(j, _)| i < *j) {
            core.first_err = Some((
                i,
                StorageError::DeviceFailed {
                    key,
                    device,
                    transient: true,
                    msg: format!(
                        "io deadline {deadline:?} exceeded with {in_flight} reads in flight"
                    ),
                },
            ));
        }
        drop(core);
        self.mgr.health.record_stall(device);
        true
    }

    /// Abandons the current pass after a tombstone observation: the epoch
    /// bump fences off its in-flight completions, the sink discards
    /// everything delivered, and the next decide starts a fresh pass
    /// against the successor state.
    fn restart(&self, sink: &mut dyn RowSink) {
        let mut core = self.core.lock();
        core.epoch += 1;
        core.pass = None;
        core.staged.clear();
        core.in_flight = 0;
        core.in_flight_keys.clear();
        core.last_progress = std::time::Instant::now();
        core.next_submit = 0;
        core.halted = false;
        core.first_err = None;
        core.delivered = 0;
        core.fast_done = false;
        core.tail_done = false;
        drop(core);
        sink.reset();
    }

    /// Advances the state machine: validates, decodes and delivers every
    /// staged completion to `sink` (through the same helpers the
    /// sequential walk uses — bit-identical output), handling tombstone
    /// restarts, sink cancellation and deterministic error resolution.
    ///
    /// Must not run concurrently for one job (see
    /// [`StorageManager::begin_read_reactor`]); IO threads staging new
    /// completions during a pump are fine — they fire another `notify`.
    pub fn pump(self: &Arc<Self>, sink: &mut dyn RowSink) -> PumpOutcome {
        loop {
            let step = {
                let mut core = self.core.lock();
                if let Some(t) = &core.terminal {
                    match t {
                        Ok(()) => PumpStep::Done,
                        Err(e) => PumpStep::Failed(e.clone()),
                    }
                } else if core.pass.is_none() {
                    match self.start_pass(&mut core) {
                        Ok(()) => PumpStep::Continue,
                        Err(e) => {
                            core.terminal = Some(Err(e.clone()));
                            PumpStep::Failed(e)
                        }
                    }
                } else if !core.staged.is_empty() || !core.fast_done {
                    // hc-analyze: allow(panic) invariant: this branch is only reached with a live pass (checked above)
                    let pass = Arc::clone(core.pass.as_ref().expect("checked above"));
                    let batch: Vec<_> = core.staged.drain(..).collect();
                    let fast_todo = !core.fast_done;
                    core.fast_done = true;
                    PumpStep::Batch {
                        pass,
                        batch,
                        fast_todo,
                        prior_failed: core.first_err.is_some(),
                    }
                } else if core.halted {
                    if core.in_flight == 0 {
                        // hc-analyze: allow(panic) invariant: halted is only set together with first_err
                        let (_, e) = core.first_err.take().expect("halted implies an error");
                        core.terminal = Some(Err(e.clone()));
                        PumpStep::Failed(e)
                    } else {
                        PumpStep::Pending
                    }
                } else {
                    // hc-analyze: allow(panic) invariant: this branch is only reached with a live pass (checked above)
                    let pass = Arc::clone(core.pass.as_ref().expect("checked above"));
                    if core.delivered == pass.device_chunks.len() && core.in_flight == 0 {
                        let has_tail = pass.slices.last().is_some_and(|s| {
                            !StorageManager::<S>::slice_is_durable(s, pass.durable)
                        });
                        if core.tail_done || !has_tail {
                            core.terminal = Some(Ok(()));
                            PumpStep::Done
                        } else {
                            core.tail_done = true;
                            PumpStep::Tail(pass)
                        }
                    } else {
                        PumpStep::Pending
                    }
                }
            };

            match step {
                PumpStep::Continue => continue,
                PumpStep::Done => return PumpOutcome::Done,
                PumpStep::Failed(e) => return PumpOutcome::Failed(e),
                PumpStep::Pending => return PumpOutcome::Pending,
                PumpStep::Tail(pass) => {
                    let plan = ReadPlan {
                        stream: self.stream,
                        slices: &pass.slices,
                        durable: pass.durable,
                        tail: pass.tail.as_deref(),
                        range_start: self.start,
                    };
                    let rows = self
                        .mgr
                        // hc-analyze: allow(panic) planner invariant: a tail slice always snapshots the partial buffer
                        .decode_tail(plan.tail.expect("tail slice implies snapshotted tail"));
                    let i = pass.slices.len() - 1;
                    match self.mgr.deliver_slice(&plan, &pass.cell, sink, i, rows) {
                        StreamPhase::Done => continue,
                        StreamPhase::Cancelled => {
                            self.core.lock().terminal = Some(Ok(()));
                            return PumpOutcome::Done;
                        }
                        StreamPhase::Restart => {
                            self.restart(sink);
                            continue;
                        }
                    }
                }
                PumpStep::Batch {
                    pass,
                    batch,
                    fast_todo,
                    prior_failed,
                } => {
                    let plan = ReadPlan {
                        stream: self.stream,
                        slices: &pass.slices,
                        durable: pass.durable,
                        tail: pass.tail.as_deref(),
                        range_start: self.start,
                    };
                    let mut errs: Vec<(usize, StorageError)> = Vec::new();
                    let mut delivered = 0usize;
                    let mut ended: Option<StreamPhase> = None;
                    if fast_todo && !prior_failed {
                        for (i, key) in pass.fast.iter().copied() {
                            if ended.is_some() || !errs.is_empty() {
                                break;
                            }
                            match read_chunk_retrying(
                                self.mgr.store.as_ref(),
                                key,
                                &self.mgr.retry,
                                &self.mgr.health,
                            )
                            .and_then(|bytes| {
                                self.mgr
                                    .decode_durable_chunk(self.stream, &pass.slices[i], &bytes)
                            }) {
                                Ok(rows) => {
                                    match self.mgr.deliver_slice(&plan, &pass.cell, sink, i, rows) {
                                        StreamPhase::Done => {}
                                        other => ended = Some(other),
                                    }
                                }
                                Err(e) => errs.push((i, e)),
                            }
                        }
                    }
                    for (i, res) in batch {
                        if ended.is_some() {
                            continue;
                        }
                        match res.and_then(|bytes| {
                            self.mgr
                                .decode_durable_chunk(self.stream, &pass.slices[i], &bytes)
                        }) {
                            Ok(rows) => {
                                if !prior_failed && errs.is_empty() {
                                    match self.mgr.deliver_slice(&plan, &pass.cell, sink, i, rows) {
                                        StreamPhase::Done => delivered += 1,
                                        other => ended = Some(other),
                                    }
                                }
                            }
                            Err(e) => errs.push((i, e)),
                        }
                    }
                    {
                        let mut core = self.core.lock();
                        core.delivered += delivered;
                        for (i, e) in errs {
                            core.halted = true;
                            if core.first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                                core.first_err = Some((i, e));
                            }
                        }
                    }
                    match ended {
                        Some(StreamPhase::Restart) => self.restart(sink),
                        Some(StreamPhase::Cancelled) => {
                            self.core.lock().terminal = Some(Ok(()));
                            return PumpOutcome::Done;
                        }
                        _ => {}
                    }
                    continue;
                }
            }
        }
    }
}

/// What [`StorageManager::reopen`] / [`StorageManager::recover`]
/// rebuilt — and what the crash cost.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Streams rebuilt with at least one surviving chunk.
    pub streams_recovered: usize,
    /// Chunks validated (present + CRC-intact) and re-tracked.
    pub chunks_recovered: usize,
    /// Journaled chunks dropped because the backend image was missing,
    /// short or CRC-mismatching (each drops its stream's suffix too).
    pub torn_chunks_discarded: usize,
    /// Backend chunks no surviving journal record names, deleted by the
    /// sweep.
    pub orphan_chunks_removed: usize,
    /// Torn journal-tail bytes truncated at replay.
    pub journal_bytes_truncated: u64,
    /// Total resident bytes after recovery (equals the rebuilt
    /// [`StorageManager::total_resident_bytes`]).
    pub resident_bytes: u64,
    /// Bytes the backend's DRAM front tier re-admitted while validating
    /// recovered chunks ([`ChunkStore::warm_chunk`]); 0 for untiered
    /// backends. A reopened tiered store starts warm, not cold.
    pub front_warmed_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStore;
    use crate::fault::{FaultStore, FaultTarget};
    use hc_tensor::f16::f16_roundtrip;

    const D: usize = 8;

    fn mgr() -> StorageManager<MemStore> {
        StorageManager::new(Arc::new(MemStore::new(4)), D)
    }

    fn rows(n: usize, seed: usize) -> Tensor2 {
        Tensor2::from_fn(n, D, |r, c| ((seed + r * D + c) % 97) as f32 * 0.25 - 12.0)
    }

    #[test]
    fn roundtrip_small_within_one_chunk() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        let t = rows(10, 0);
        m.append_rows(s, &t).unwrap();
        let back = m.read_rows(s, 0, 10).unwrap();
        for r in 0..10 {
            for c in 0..D {
                assert_eq!(back.get(r, c), f16_roundtrip(t.get(r, c)));
            }
        }
    }

    #[test]
    fn roundtrip_across_chunk_boundaries() {
        let m = mgr();
        let s = StreamId::hidden(2, 3);
        let t = rows(200, 5);
        m.append_rows(s, &t).unwrap();
        let back = m.read_rows(s, 50, 150).unwrap();
        assert_eq!(back.shape(), (100, D));
        for r in 0..100 {
            assert_eq!(back.get(r, 0), f16_roundtrip(t.get(50 + r, 0)));
        }
    }

    #[test]
    fn incremental_appends_match_bulk() {
        let m1 = mgr();
        let m2 = mgr();
        let s = StreamId::hidden(1, 1);
        let t = rows(130, 9);
        m1.append_rows(s, &t).unwrap();
        for r in 0..130 {
            m2.append_row(s, t.row(r)).unwrap();
        }
        let a = m1.read_rows(s, 0, 130).unwrap();
        let b = m2.read_rows(s, 0, 130).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn full_chunks_are_written_eagerly() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(64, 0)).unwrap();
        assert_eq!(m.stats().total_writes(), 1, "full chunk must flush eagerly");
        m.append_rows(s, &rows(63, 1)).unwrap();
        assert_eq!(
            m.stats().total_writes(),
            1,
            "partial chunk must stay buffered"
        );
        m.append_rows(s, &rows(1, 2)).unwrap();
        assert_eq!(m.stats().total_writes(), 2, "chunk completes at 128 tokens");
    }

    #[test]
    fn reads_served_from_unflushed_tail() {
        let m = mgr();
        let s = StreamId::hidden(1, 2);
        let t = rows(70, 3);
        m.append_rows(s, &t).unwrap();
        // Tokens 64..70 are only in the buffer.
        let back = m.read_rows(s, 60, 70).unwrap();
        assert_eq!(back.get(9, 1), f16_roundtrip(t.get(69, 1)));
    }

    #[test]
    fn flush_then_extend_tail_chunk() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(70, 1)).unwrap();
        m.flush_stream(s).unwrap();
        m.append_rows(s, &rows(10, 2)).unwrap();
        m.flush_stream(s).unwrap();
        let back = m.read_rows(s, 0, 80).unwrap();
        assert_eq!(back.rows(), 80);
        // Tail rows come from the second batch.
        assert_eq!(back.get(75, 0), f16_roundtrip(rows(10, 2).get(5, 0)));
    }

    #[test]
    fn out_of_range_read_is_an_error() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(5, 0)).unwrap();
        let err = m.read_rows(s, 0, 6).unwrap_err();
        assert!(matches!(
            err,
            StorageError::OutOfRange {
                available: 5,
                requested: 6,
                ..
            }
        ));
    }

    #[test]
    fn absurd_range_is_out_of_range_not_an_allocation_panic() {
        // The output tensor must not be allocated before the range is
        // validated: a stale "read everything" end (u64::MAX) returns the
        // typed error instead of aborting on a capacity-overflow alloc.
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(10, 0)).unwrap();
        let err = m.read_rows(s, 0, u64::MAX).unwrap_err();
        assert!(matches!(
            err,
            StorageError::OutOfRange { available: 10, .. }
        ));
    }

    #[test]
    fn empty_read_is_ok() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        let t = m.read_rows(s, 0, 0).unwrap();
        assert_eq!(t.rows(), 0);
    }

    #[test]
    fn streams_are_independent() {
        let m = mgr();
        let a = StreamId::hidden(1, 0);
        let b = StreamId::key(1, 0);
        m.append_rows(a, &rows(10, 1)).unwrap();
        m.append_rows(b, &rows(20, 2)).unwrap();
        assert_eq!(m.n_tokens(a), 10);
        assert_eq!(m.n_tokens(b), 20);
    }

    #[test]
    fn delete_session_frees_all_streams() {
        let m = mgr();
        m.append_rows(StreamId::hidden(7, 0), &rows(64, 0)).unwrap();
        m.append_rows(StreamId::key(7, 1), &rows(64, 1)).unwrap();
        m.append_rows(StreamId::hidden(8, 0), &rows(64, 2)).unwrap();
        let freed = m.delete_session(7);
        assert_eq!(freed, 2 * 64 * D as u64 * 2); // 2 chunks, f16
        assert_eq!(m.n_tokens(StreamId::hidden(7, 0)), 0);
        assert_eq!(m.n_tokens(StreamId::hidden(8, 0)), 64);
    }

    #[test]
    fn int8_precision_roundtrip_within_bound() {
        let m =
            StorageManager::with_precision(Arc::new(MemStore::new(2)), D, crate::Precision::Int8);
        let s = StreamId::hidden(1, 0);
        let t = rows(100, 4);
        m.append_rows(s, &t).unwrap();
        let back = m.read_rows(s, 0, 100).unwrap();
        for r in 0..100 {
            let bound = hc_tensor::quant::row_error_bound(t.row(r));
            for c in 0..D {
                assert!(
                    (back.get(r, c) - t.get(r, c)).abs() <= bound,
                    "({r},{c}): {} vs {}",
                    back.get(r, c),
                    t.get(r, c)
                );
            }
        }
    }

    #[test]
    fn int8_halves_stored_bytes() {
        // Use a realistic row width so the 4-byte per-row scale is
        // negligible (at D=4096 it is 0.1%).
        const WIDE: usize = 256;
        let m16 = StorageManager::new(Arc::new(MemStore::new(2)), WIDE);
        let m8 = StorageManager::with_precision(
            Arc::new(MemStore::new(2)),
            WIDE,
            crate::Precision::Int8,
        );
        let s = StreamId::hidden(1, 0);
        let t = Tensor2::from_fn(128, WIDE, |r, c| ((r + c) % 23) as f32 * 0.5 - 5.0);
        m16.append_rows(s, &t).unwrap();
        m8.append_rows(s, &t).unwrap();
        let b16 = m16.stats().total_bytes_written();
        let b8 = m8.stats().total_bytes_written();
        assert!((b8 as f64) < 0.55 * b16 as f64, "int8 {b8} vs f16 {b16}");
    }

    #[test]
    fn resident_bytes_track_backend_exactly_under_tail_rewrites() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        // Nothing durable yet: 70 rows = 1 full chunk + 6 buffered.
        m.append_rows(s, &rows(70, 1)).unwrap();
        assert_eq!(m.stream_bytes(s), 64 * D as u64 * 2);
        // Flushing the 6-row tail adds exactly its encoded bytes.
        m.flush_stream(s).unwrap();
        assert_eq!(m.stream_bytes(s), 70 * D as u64 * 2);
        // Re-flushing a grown tail replaces, not adds.
        m.append_rows(s, &rows(10, 2)).unwrap();
        m.flush_stream(s).unwrap();
        assert_eq!(m.stream_bytes(s), 80 * D as u64 * 2);
        // Completing the chunk absorbs the flushed tail in place.
        m.append_rows(s, &rows(48, 3)).unwrap();
        assert_eq!(m.stream_bytes(s), 128 * D as u64 * 2);
        // Total traffic exceeds residency (rewrites counted every time)...
        assert!(m.stats().total_bytes_written() > m.stream_bytes(s));
        // ...but delete frees exactly the resident figure.
        assert_eq!(m.delete_stream(s), 128 * D as u64 * 2);
        assert_eq!(m.stream_bytes(s), 0);
    }

    #[test]
    fn session_bytes_sum_streams_and_match_delete_freed() {
        let m = mgr();
        m.append_rows(StreamId::hidden(7, 0), &rows(80, 0)).unwrap();
        m.append_rows(StreamId::key(7, 1), &rows(70, 1)).unwrap();
        m.append_rows(StreamId::value(7, 1), &rows(70, 2)).unwrap();
        m.append_rows(StreamId::hidden(8, 0), &rows(64, 3)).unwrap();
        m.flush_session(7).unwrap();
        let tracked = m.session_bytes(7);
        assert_eq!(tracked, (80 + 70 + 70) * D as u64 * 2);
        assert_eq!(m.total_resident_bytes(), tracked + 64 * D as u64 * 2);
        assert_eq!(m.sessions(), vec![7, 8]);
        let freed = m.delete_session(7);
        assert_eq!(freed, tracked, "freed bytes must equal the tracked figure");
        assert_eq!(m.session_bytes(7), 0);
        assert_eq!(m.sessions(), vec![8]);
    }

    #[test]
    fn unflushed_tails_occupy_no_backend_bytes() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(10, 0)).unwrap();
        assert_eq!(m.stream_bytes(s), 0, "buffered rows are not resident");
        assert_eq!(m.delete_session(1), 0);
    }

    #[test]
    fn chunks_spread_across_devices() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(64 * 8, 0)).unwrap();
        let stats = m.stats();
        for (i, d) in stats.devices.iter().enumerate() {
            assert_eq!(d.writes, 2, "device {i} should hold 2 of 8 chunks");
        }
    }

    #[test]
    fn append_after_delete_restarts_the_stream() {
        // Sequential delete-then-append semantics, which the tombstone
        // protocol also guarantees under concurrency.
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(70, 1)).unwrap();
        m.flush_stream(s).unwrap();
        assert_eq!(m.delete_stream(s), 70 * D as u64 * 2);
        m.append_rows(s, &rows(10, 2)).unwrap();
        assert_eq!(m.n_tokens(s), 10);
        let back = m.read_rows(s, 0, 10).unwrap();
        assert_eq!(back.get(0, 0), f16_roundtrip(rows(10, 2).get(0, 0)));
        m.flush_stream(s).unwrap();
        assert_eq!(m.stream_bytes(s), 10 * D as u64 * 2);
        assert_eq!(m.total_resident_bytes(), 10 * D as u64 * 2);
    }

    #[test]
    fn delete_of_untracked_stream_is_a_noop() {
        let m = mgr();
        assert_eq!(m.delete_stream(StreamId::hidden(5, 0)), 0);
        // A first append racing such a delete must never lose its chunks:
        // sequentially, delete-before-append leaves the append intact.
        m.append_rows(StreamId::hidden(5, 0), &rows(64, 0)).unwrap();
        assert_eq!(m.n_tokens(StreamId::hidden(5, 0)), 64);
        assert_eq!(m.delete_stream(StreamId::hidden(5, 0)), 64 * D as u64 * 2);
    }

    #[test]
    fn double_delete_frees_once() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(64, 0)).unwrap();
        assert_eq!(m.delete_stream(s), 64 * D as u64 * 2);
        assert_eq!(m.delete_stream(s), 0);
        assert_eq!(m.total_resident_bytes(), 0);
    }

    #[test]
    fn total_resident_bytes_is_consistent_under_concurrent_mutation() {
        // Appenders + a deleter hammer distinct streams; afterwards the
        // atomic aggregate equals the per-stream sum (and the backend).
        let m = Arc::new(mgr());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    let s = StreamId::hidden(t, 0);
                    for i in 0..20 {
                        m.append_rows(s, &rows(16, i)).unwrap();
                        m.flush_stream(s).unwrap();
                        if i % 7 == 6 {
                            m.delete_stream(s);
                        }
                    }
                });
            }
        });
        let per_stream_sum: u64 = m.sessions().iter().map(|&sess| m.session_bytes(sess)).sum();
        assert_eq!(m.total_resident_bytes(), per_stream_sum);
        let freed: u64 = m
            .sessions()
            .iter()
            .map(|&sess| m.delete_session(sess))
            .sum();
        assert_eq!(freed, per_stream_sum);
        assert_eq!(m.total_resident_bytes(), 0);
    }

    #[test]
    fn read_racing_delete_and_restart_never_mixes_generations() {
        // Generation-ABA regression: the stream is deleted and rewritten
        // (same chunk keys, different rows) while a reader is mid-IO —
        // legal, because read_rows holds no lock there. A FaultStore read
        // hook interleaves the delete/restart deterministically. The
        // reader must return the *new* generation wholesale, never a mix.
        let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(2))));
        let mgr = Arc::new(StorageManager::new(Arc::clone(&store), D));
        let s = StreamId::hidden(1, 0);
        mgr.append_rows(s, &rows(128, 1)).unwrap(); // generation 1: 2 chunks
        let mgr2 = Arc::clone(&mgr);
        store.on_nth_read(0, move || {
            // Fires inside the reader's first chunk fetch.
            mgr2.delete_stream(s);
            mgr2.append_rows(s, &rows(128, 2)).unwrap(); // generation 2
        });
        let got = mgr.read_rows(s, 0, 128).unwrap();
        let gen2 = rows(128, 2);
        for r in 0..128 {
            for c in 0..D {
                assert_eq!(
                    got.get(r, c),
                    f16_roundtrip(gen2.get(r, c)),
                    "row {r} col {c} leaked generation-1 data"
                );
            }
        }
        // Accounting survived the interleaving too.
        assert_eq!(mgr.total_resident_bytes(), 128 * D as u64 * 2);
        assert_eq!(mgr.delete_stream(s), 128 * D as u64 * 2);
    }

    #[test]
    fn fanout_reads_are_bit_identical_to_sequential_at_every_width() {
        // Same deterministic data through a sequential manager and fanout
        // managers of widths 2/4/8: every range shape (aligned, interior,
        // tail-touching, single-chunk) must come back bit-identical.
        let seq = mgr();
        let s = StreamId::hidden(3, 1);
        let t = rows(300, 7); // 4 full chunks + 44-row unflushed tail
        seq.append_rows(s, &t).unwrap();
        let ranges = [
            (0, 300),
            (0, 256),
            (70, 200),
            (64, 128),
            (5, 20),
            (250, 300),
        ];
        for width in [2usize, 4, 8] {
            let fan = StorageManager::new(Arc::new(MemStore::new(4)), D).with_read_fanout(width);
            assert_eq!(fan.read_fanout_width(), width);
            fan.append_rows(s, &t).unwrap();
            for &(a, b) in &ranges {
                assert_eq!(
                    fan.read_rows(s, a, b).unwrap(),
                    seq.read_rows(s, a, b).unwrap(),
                    "width {width} range {a}..{b} diverged"
                );
            }
        }
    }

    #[test]
    fn fanout_int8_reads_match_sequential() {
        let seq =
            StorageManager::with_precision(Arc::new(MemStore::new(4)), D, crate::Precision::Int8);
        let fan =
            StorageManager::with_precision(Arc::new(MemStore::new(4)), D, crate::Precision::Int8)
                .with_read_fanout(4);
        let s = StreamId::hidden(1, 0);
        let t = rows(200, 9);
        seq.append_rows(s, &t).unwrap();
        fan.append_rows(s, &t).unwrap();
        assert_eq!(
            fan.read_rows(s, 0, 200).unwrap(),
            seq.read_rows(s, 0, 200).unwrap()
        );
    }

    #[test]
    fn fanout_width_one_keeps_the_sequential_path() {
        let m = mgr().with_read_fanout(1);
        assert_eq!(m.read_fanout_width(), 1);
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(100, 1)).unwrap();
        assert_eq!(m.read_rows(s, 0, 100).unwrap().rows(), 100);
    }

    #[test]
    fn fanout_missing_state_surfaces_the_lowest_chunk_error() {
        // Chunks 0..4 written, then chunk 1 and 3 wiped behind the
        // manager's back: the fanout read must report the lowest missing
        // index (what a sequential walk hits first), not whichever device
        // completes first.
        let store = Arc::new(MemStore::new(4));
        let m = StorageManager::new(Arc::clone(&store), D).with_read_fanout(4);
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(256, 1)).unwrap();
        // Wipe the backend without tombstoning (simulates external loss).
        store.delete_stream(s);
        let err = m.read_rows(s, 0, 256).unwrap_err();
        assert_eq!(
            err,
            StorageError::MissingChunk {
                stream: s,
                chunk_idx: 0
            }
        );
    }

    #[test]
    fn fanout_read_racing_delete_and_restart_never_mixes_generations() {
        // The generation-ABA race of
        // `read_racing_delete_and_restart_never_mixes_generations`, driven
        // through the fanout path: the delete + re-append (identical sizes,
        // reused chunk keys) fires inside a pool worker's first fetch, and
        // the post-IO tombstone revalidation must still retry the read
        // wholesale onto generation 2.
        let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(2))));
        let mgr = Arc::new(StorageManager::new(Arc::clone(&store), D).with_read_fanout(4));
        let s = StreamId::hidden(1, 0);
        mgr.append_rows(s, &rows(128, 1)).unwrap(); // generation 1: 2 chunks
        let mgr2 = Arc::clone(&mgr);
        store.on_nth_read(0, move || {
            mgr2.delete_stream(s);
            mgr2.append_rows(s, &rows(128, 2)).unwrap(); // generation 2
        });
        let got = mgr.read_rows(s, 0, 128).unwrap();
        let gen2 = rows(128, 2);
        for r in 0..128 {
            for c in 0..D {
                assert_eq!(
                    got.get(r, c),
                    f16_roundtrip(gen2.get(r, c)),
                    "row {r} col {c} leaked generation-1 data through the fanout path"
                );
            }
        }
        assert_eq!(mgr.delete_stream(s), 128 * D as u64 * 2);
    }

    /// Records every delivery and reset; `assembled` rebuilds the range
    /// from whatever survived the last reset — what a real consumer keeps.
    #[derive(Default)]
    struct RecordingSink {
        delivered: Vec<DeliveredRows>,
        resets: usize,
        cancel_after: Option<usize>,
    }

    impl RecordingSink {
        fn assembled(&self, n_rows: usize, d: usize) -> Tensor2 {
            let mut out = Tensor2::zeros(n_rows, d);
            for c in &self.delivered {
                for r in 0..c.rows.rows() {
                    out.row_mut(c.row_start + r).copy_from_slice(c.rows.row(r));
                }
            }
            out
        }
    }

    impl RowSink for RecordingSink {
        fn deliver(&mut self, chunk: DeliveredRows) -> bool {
            if self.cancel_after == Some(self.delivered.len()) {
                return false;
            }
            self.delivered.push(chunk);
            true
        }

        fn reset(&mut self) {
            self.delivered.clear();
            self.resets += 1;
        }
    }

    #[test]
    fn streaming_reads_match_read_rows_at_every_width() {
        // Every range shape (aligned, interior, tail-touching,
        // single-chunk) streamed at widths 1/2/4/8 must reassemble to the
        // exact read_rows tensor, with each row covered by exactly one
        // delivery.
        let s = StreamId::hidden(3, 1);
        let t = rows(300, 7); // 4 full chunks + 44-row unflushed tail
        let ranges = [
            (0u64, 300u64),
            (0, 256),
            (70, 200),
            (64, 128),
            (5, 20),
            (250, 300),
        ];
        for width in [1usize, 2, 4, 8] {
            let m = StorageManager::new(Arc::new(MemStore::new(4)), D).with_read_fanout(width);
            m.append_rows(s, &t).unwrap();
            for &(a, b) in &ranges {
                let expect = m.read_rows(s, a, b).unwrap();
                let mut sink = RecordingSink::default();
                m.read_rows_streaming(s, a, b, &mut sink).unwrap();
                assert_eq!(sink.resets, 0);
                let n_slices = chunks_for_range(a, b).len();
                assert_eq!(sink.delivered.len(), n_slices, "width {width} {a}..{b}");
                let total: usize = sink.delivered.iter().map(|c| c.rows.rows()).sum();
                assert_eq!(total, (b - a) as usize, "rows must partition the range");
                assert_eq!(
                    sink.assembled((b - a) as usize, D),
                    expect,
                    "width {width} range {a}..{b} diverged"
                );
            }
        }
    }

    #[test]
    fn streaming_out_of_range_and_cancellation() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(200, 3)).unwrap();
        let mut sink = RecordingSink::default();
        let err = m.read_rows_streaming(s, 0, 201, &mut sink).unwrap_err();
        assert!(matches!(err, StorageError::OutOfRange { .. }));
        assert!(sink.delivered.is_empty());
        // Cancelling after the first delivery ends the read early and Ok.
        let mut sink = RecordingSink {
            cancel_after: Some(1),
            ..Default::default()
        };
        m.read_rows_streaming(s, 0, 200, &mut sink).unwrap();
        assert_eq!(sink.delivered.len(), 1);
    }

    #[test]
    fn adaptive_fanout_skips_single_chunk_and_single_lane_ranges() {
        // Multi-chunk multi-device ranges draw on the pool; a range inside
        // one chunk does not, and a single-device store never does (one
        // lane serializes there anyway).
        let m = StorageManager::new(Arc::new(MemStore::new(4)), D).with_read_fanout(4);
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(256, 1)).unwrap();
        let pool = Arc::clone(m.read_fanout_pool().unwrap());
        let before = pool.jobs_submitted();
        m.read_rows(s, 10, 40).unwrap(); // within chunk 0
        assert_eq!(pool.jobs_submitted(), before, "≤1 durable chunk: inline");
        m.read_rows(s, 0, 256).unwrap(); // 4 chunks over 4 devices
        assert!(pool.jobs_submitted() > before, "wide range must fan out");

        let single = StorageManager::new(Arc::new(MemStore::new(1)), D).with_read_fanout(4);
        single.append_rows(s, &rows(256, 1)).unwrap();
        let pool1 = Arc::clone(single.read_fanout_pool().unwrap());
        single.read_rows(s, 0, 256).unwrap();
        assert_eq!(pool1.jobs_submitted(), 0, "one device lane: inline");
    }

    #[test]
    fn adaptive_fanout_skips_dram_front_hits() {
        // Everything write-through hot in the tiered front: the fanout
        // pool is never consulted, reads come back identical anyway.
        let tiered = Arc::new(crate::tiered::TieredStore::new(
            Arc::new(MemStore::new(4)),
            1 << 20,
        ));
        let m = StorageManager::new(Arc::clone(&tiered), D).with_read_fanout(4);
        let s = StreamId::hidden(1, 0);
        let t = rows(256, 5);
        m.append_rows(s, &t).unwrap();
        let pool = Arc::clone(m.read_fanout_pool().unwrap());
        let got = m.read_rows(s, 0, 256).unwrap();
        assert_eq!(pool.jobs_submitted(), 0, "front hits must read inline");
        let seq = StorageManager::new(Arc::new(MemStore::new(4)), D);
        seq.append_rows(s, &t).unwrap();
        assert_eq!(got, seq.read_rows(s, 0, 256).unwrap());
        // Evict the front (tiny successor store) — cold multi-chunk reads
        // fan out again.
        let cold_back = Arc::new(MemStore::new(4));
        let cold = Arc::new(crate::tiered::TieredStore::new(Arc::clone(&cold_back), 8));
        let m2 = StorageManager::new(Arc::clone(&cold), D).with_read_fanout(4);
        m2.append_rows(s, &t).unwrap(); // every chunk oversized for an 8-byte front
        let pool2 = Arc::clone(m2.read_fanout_pool().unwrap());
        m2.read_rows(s, 0, 256).unwrap();
        assert!(pool2.jobs_submitted() > 0, "cold chunks must fan out");
    }

    #[test]
    fn mixed_hot_cold_ranges_fan_out_cold_chunks_only() {
        // A tiered front holding only the most recent chunks: the cold
        // prefix fans out (one lane job per occupied device) while the
        // hot suffix is read inline — the pool sees exactly the cold
        // lanes, and the assembled bytes still match a plain manager.
        let per_chunk = 64 * D as u64 * 2;
        let tiered = Arc::new(crate::tiered::TieredStore::new(
            Arc::new(MemStore::new(4)),
            2 * per_chunk, // room for the 2 most recently written chunks
        ));
        let m = StorageManager::new(Arc::clone(&tiered), D).with_read_fanout(4);
        let s = StreamId::hidden(1, 0);
        let t = rows(256, 3); // chunks 0..4; front ends up holding 2 and 3
        m.append_rows(s, &t).unwrap();
        assert!(!tiered.chunk_in_fast_tier(ChunkKey {
            stream: s,
            chunk_idx: 0
        }));
        assert!(tiered.chunk_in_fast_tier(ChunkKey {
            stream: s,
            chunk_idx: 3
        }));
        let pool = Arc::clone(m.read_fanout_pool().unwrap());
        let got = m.read_rows(s, 0, 256).unwrap();
        assert_eq!(
            pool.jobs_submitted(),
            2,
            "only the two cold chunks' lanes may draw on the pool"
        );
        let seq = StorageManager::new(Arc::new(MemStore::new(4)), D);
        seq.append_rows(s, &t).unwrap();
        assert_eq!(got, seq.read_rows(s, 0, 256).unwrap());
    }

    #[test]
    fn streaming_mid_stream_delete_reappend_resets_and_redelivers() {
        // The generation-ABA race delivered mid-stream: the delete +
        // same-size re-append fires inside the second chunk's fetch, after
        // chunk 0 was already delivered. The per-chunk revalidation must
        // reset the sink and redeliver generation 2 wholesale.
        let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(2))));
        let mgr = Arc::new(StorageManager::new(Arc::clone(&store), D));
        let s = StreamId::hidden(1, 0);
        mgr.append_rows(s, &rows(128, 1)).unwrap(); // generation 1: 2 chunks
        let mgr2 = Arc::clone(&mgr);
        // Fire inside the *second* chunk fetch: chunk 0 has already been
        // delivered to the sink by then.
        store.on_nth_read(1, move || {
            mgr2.delete_stream(s);
            mgr2.append_rows(s, &rows(128, 2)).unwrap(); // generation 2
        });
        let mut sink = RecordingSink::default();
        mgr.read_rows_streaming(s, 0, 128, &mut sink).unwrap();
        assert!(sink.resets >= 1, "mid-stream delete must reset the sink");
        assert_eq!(sink.delivered.len(), 2, "both chunks redelivered");
        let got = sink.assembled(128, D);
        let gen2 = rows(128, 2);
        for r in 0..128 {
            for c in 0..D {
                assert_eq!(
                    got.get(r, c),
                    f16_roundtrip(gen2.get(r, c)),
                    "row {r} col {c} leaked generation-1 data past a reset"
                );
            }
        }
        assert_eq!(mgr.delete_stream(s), 128 * D as u64 * 2);
    }

    #[test]
    fn concurrent_readers_see_bit_identical_data() {
        let m = Arc::new(mgr());
        let s = StreamId::hidden(1, 0);
        let t = rows(200, 5);
        m.append_rows(s, &t).unwrap();
        let expect = m.read_rows(s, 0, 200).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                let expect = &expect;
                scope.spawn(move || {
                    for _ in 0..10 {
                        assert_eq!(&m.read_rows(s, 0, 200).unwrap(), expect);
                    }
                });
            }
        });
    }

    #[test]
    fn transient_device_faults_are_masked_by_bounded_retry() {
        let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(2))));
        let m = StorageManager::new(Arc::clone(&store), D);
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(128, 3)).unwrap();
        let expect = m.read_rows(s, 0, 128).unwrap();
        // One charge fewer than the attempt budget: the last retry lands.
        let attempts = m.retry_policy().attempts;
        store.fail_reads(FaultTarget::Any, attempts - 1, true);
        assert_eq!(m.read_rows(s, 0, 128).unwrap(), expect);
        assert_eq!(store.reads_failed() as usize, attempts - 1);
    }

    #[test]
    fn persistent_transient_faults_exhaust_the_retry_budget() {
        let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(2))));
        let m = StorageManager::new(Arc::clone(&store), D);
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(64, 1)).unwrap();
        let k0 = ChunkKey {
            stream: s,
            chunk_idx: 0,
        };
        let attempts = m.retry_policy().attempts;
        store.fail_reads(FaultTarget::Key(k0), attempts, true);
        let err = m.read_rows(s, 0, 64).unwrap_err();
        assert!(
            matches!(
                err,
                StorageError::DeviceFailed {
                    transient: true,
                    ..
                }
            ),
            "exhausted retries must surface the transient fault: {err:?}"
        );
        assert_eq!(store.reads_failed() as usize, attempts);
    }

    #[test]
    fn permanent_device_faults_surface_without_retry() {
        let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(2))));
        let m = StorageManager::new(Arc::clone(&store), D);
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(64, 1)).unwrap();
        let k0 = ChunkKey {
            stream: s,
            chunk_idx: 0,
        };
        store.fail_reads(FaultTarget::Key(k0), 1, false);
        let err = m.read_rows(s, 0, 64).unwrap_err();
        assert_eq!(
            err,
            StorageError::DeviceFailed {
                key: k0,
                device: device_for(&k0, 2),
                transient: false,
                msg: "injected device read failure".into(),
            }
        );
        assert_eq!(store.reads_failed(), 1, "permanent faults get no retry");
    }

    #[test]
    fn fanout_surfaces_the_lowest_faulted_slice() {
        // Permanent faults on chunks 1 and 3: the fanout read must report
        // chunk 1 (what a sequential walk hits first), regardless of
        // completion order.
        let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(4))));
        let m = StorageManager::new(Arc::clone(&store), D).with_read_fanout(4);
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(256, 1)).unwrap();
        for idx in [1u32, 3] {
            store.fail_reads(
                FaultTarget::Key(ChunkKey {
                    stream: s,
                    chunk_idx: idx,
                }),
                1,
                false,
            );
        }
        let err = m.read_rows(s, 0, 256).unwrap_err();
        assert!(
            matches!(
                err,
                StorageError::DeviceFailed {
                    key: ChunkKey { chunk_idx: 1, .. },
                    transient: false,
                    ..
                }
            ),
            "lowest faulted slice must win: {err:?}"
        );
    }

    #[test]
    fn breaker_opens_on_device_outage_and_probe_heals() {
        use crate::health::{BreakerConfig, BreakerState, DeviceHealth};
        let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(2))));
        let cfg = BreakerConfig {
            consecutive_failures: 3,
            cooldown: Duration::from_millis(5),
            ..BreakerConfig::default()
        };
        let m = StorageManager::new(Arc::clone(&store), D)
            .with_device_health(Arc::new(DeviceHealth::with_config(2, cfg)));
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(64, 1)).unwrap(); // chunk 0 → device 0
        let expect = m.read_rows(s, 0, 64).unwrap();
        store.device_down(0);
        // Permanent outage failures get no retry; the configured run of
        // failed reads opens the breaker.
        for _ in 0..cfg.consecutive_failures {
            assert!(m.read_rows(s, 0, 64).is_err());
        }
        assert_eq!(m.device_health().state(0), BreakerState::Open);
        // Open breaker fails fast — typed transient, no device IO.
        let seen = store.reads_seen();
        let err = m.read_rows(s, 0, 64).unwrap_err();
        assert!(
            matches!(
                err,
                StorageError::DeviceFailed {
                    device: 0,
                    transient: true,
                    ..
                }
            ),
            "fast-fail must be typed transient: {err:?}"
        );
        assert_eq!(
            store.reads_seen(),
            seen,
            "fast-fail must not touch the device"
        );
        // After the cooldown a half-open probe goes out; against a
        // still-down device it fails (one IO) and re-opens the breaker.
        std::thread::sleep(cfg.cooldown + Duration::from_millis(1));
        assert!(m.read_rows(s, 0, 64).is_err());
        assert_eq!(store.reads_seen(), seen + 1, "exactly one probe read");
        assert_eq!(m.device_health().state(0), BreakerState::Open);
        // Heal the device; the next probe closes the breaker and reads
        // flow bit-identically again.
        store.device_up(0);
        std::thread::sleep(cfg.cooldown + Duration::from_millis(1));
        assert_eq!(m.read_rows(s, 0, 64).unwrap(), expect);
        assert_eq!(m.device_health().state(0), BreakerState::Closed);
        let (errors, _stalls, trips) = m.device_health().counters(0);
        assert_eq!(trips, 2, "outage trip + failed-probe retrip");
        assert!(errors >= 4);
    }

    #[test]
    fn stream_devices_names_occupied_lanes_skipping_fast_tier() {
        let m = StorageManager::new(Arc::new(MemStore::new(4)), D);
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(70, 1)).unwrap();
        m.flush_stream(s).unwrap(); // tail chunk 1 becomes durable
        assert_eq!(m.stream_devices(s), vec![0, 1]);
        assert!(m.stream_devices(StreamId::hidden(9, 9)).is_empty());
        // Front-resident chunks drop off: they restore without device IO.
        let per_chunk = 64 * D as u64 * 2;
        let tiered = Arc::new(crate::tiered::TieredStore::new(
            Arc::new(MemStore::new(4)),
            4 * per_chunk,
        ));
        let mt = StorageManager::new(tiered, D);
        mt.append_rows(s, &rows(70, 1)).unwrap();
        mt.flush_stream(s).unwrap();
        assert!(
            mt.stream_devices(s).is_empty(),
            "all chunks DRAM-front resident"
        );
    }

    #[test]
    fn reactor_deadline_times_out_a_stalled_lane_as_transient() {
        let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(2))));
        let m = StorageManager::new(Arc::clone(&store), D)
            .with_reactor(Reactor::new(2, 2))
            .with_retry_policy(RetryPolicy::default().with_io_deadline(Duration::from_millis(20)));
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(256, 1)).unwrap(); // 4 chunks over 2 devices
        let expect = m.read_rows(s, 0, 256).unwrap();
        store.stall_reads(FaultTarget::Device(1), Duration::from_millis(200));
        let t = std::time::Instant::now();
        let err = m.read_rows(s, 0, 256).unwrap_err();
        assert!(
            matches!(
                err,
                StorageError::DeviceFailed {
                    device: 1,
                    transient: true,
                    ..
                }
            ),
            "stall must surface typed transient on the stalled lane: {err:?}"
        );
        assert!(
            t.elapsed() < Duration::from_millis(150),
            "the deadline must beat the stall"
        );
        assert_eq!(m.device_health().counters(1).1, 1, "stall recorded");
        store.clear_read_stalls();
        // Let the abandoned stalled reads drain off the device queue —
        // a fresh read would otherwise queue behind them and time out
        // again (correctly: the lane is still busy).
        std::thread::sleep(Duration::from_millis(250));
        assert_eq!(m.read_rows(s, 0, 256).unwrap(), expect);
    }

    #[test]
    fn reactor_job_expire_stalled_fails_typed_and_fences_late_completions() {
        let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(2))));
        let m =
            Arc::new(StorageManager::new(Arc::clone(&store), D).with_reactor(Reactor::new(2, 2)));
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(256, 1)).unwrap();
        store.stall_reads(FaultTarget::Any, Duration::from_millis(100));
        let job = m.begin_read_reactor(s, 0, 256, Arc::new(|| {}));
        let mut sink = RecordingSink::default();
        assert!(matches!(job.pump(&mut sink), PumpOutcome::Pending));
        assert!(
            !job.expire_stalled(Duration::from_millis(500)),
            "deadline not reached yet"
        );
        std::thread::sleep(Duration::from_millis(30));
        assert!(job.expire_stalled(Duration::from_millis(20)));
        match job.pump(&mut sink) {
            PumpOutcome::Failed(StorageError::DeviceFailed {
                transient: true, ..
            }) => {}
            other => panic!("expected typed stall failure, got {other:?}"),
        }
        // Late completions of the fenced pass must not revive the job.
        std::thread::sleep(Duration::from_millis(120));
        assert!(
            matches!(job.pump(&mut sink), PumpOutcome::Failed(_)),
            "terminal result is sticky"
        );
    }

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hcmgr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn reopen_rebuilds_streams_bit_identical_with_exact_accounting() {
        let root = tmp_root("reopen");
        let s = StreamId::hidden(1, 0);
        let s2 = StreamId::key(2, 1);
        let (expect, expect2, resident) = {
            let m = StorageManager::create_durable(&root, 2, D, crate::Precision::F16).unwrap();
            m.append_rows(s, &rows(200, 3)).unwrap(); // 3 chunks + 8-row tail
            m.flush_stream(s).unwrap();
            // 64 durable + 6 buffered rows; the buffer is never flushed,
            // so a crash loses exactly those 6 rows and nothing else.
            m.append_rows(s2, &rows(70, 5)).unwrap();
            (
                m.read_rows(s, 0, 200).unwrap(),
                m.read_rows(s2, 0, 64).unwrap(),
                m.total_resident_bytes(),
            )
        };
        let (m2, report) = StorageManager::reopen(&root).unwrap();
        assert_eq!(report.streams_recovered, 2);
        assert_eq!(report.torn_chunks_discarded, 0);
        assert_eq!(report.journal_bytes_truncated, 0);
        assert_eq!(report.resident_bytes, resident);
        assert_eq!(report.front_warmed_bytes, 0, "no fast tier to warm");
        assert_eq!(m2.total_resident_bytes(), resident);
        assert_eq!(m2.n_tokens(s), 200);
        assert_eq!(m2.n_tokens(s2), 64, "unflushed buffer rows are lost");
        assert_eq!(m2.read_rows(s, 0, 200).unwrap(), expect);
        assert_eq!(m2.read_rows(s2, 0, 64).unwrap(), expect2);
        // freed == tracked holds across the restart.
        let freed = m2.delete_stream(s) + m2.delete_stream(s2);
        assert_eq!(freed, resident);
        assert_eq!(m2.total_resident_bytes(), 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn recover_rewarms_a_tiered_front_and_reports_bytes() {
        let root = tmp_root("rewarm");
        let s = StreamId::hidden(1, 0);
        let expect = {
            let m = StorageManager::create_durable(&root, 2, D, crate::Precision::F16).unwrap();
            m.append_rows(s, &rows(128, 3)).unwrap(); // 2 full chunks
            m.read_rows(s, 0, 128).unwrap()
        };
        let back = Arc::new(FileStore::open(&root, 2).unwrap());
        let tiered = Arc::new(crate::tiered::TieredStore::new(back, 1 << 20));
        let (m2, report) = StorageManager::recover(Arc::clone(&tiered), &root).unwrap();
        let resident = 128 * D as u64 * 2;
        assert_eq!(report.front_warmed_bytes, resident, "both chunks warm");
        assert_eq!(tiered.front_used_bytes(), resident);
        // The restart does not begin cold: the restore read never goes
        // back to the files.
        let back_reads = tiered.back().stats().total_reads();
        assert_eq!(m2.read_rows(s, 0, 128).unwrap(), expect);
        assert_eq!(
            tiered.back().stats().total_reads(),
            back_reads,
            "warm front must serve the restore"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopened_tail_extends_and_reflushes_bit_identically() {
        // Appending across the reopen boundary must match a never-crashed
        // manager: the recovered tail re-encodes byte-identically (f16
        // round-trip is idempotent), completes into a full chunk, and the
        // stream keeps growing.
        let root = tmp_root("extend");
        let s = StreamId::hidden(1, 0);
        let all = rows(150, 7);
        {
            let m = StorageManager::create_durable(&root, 2, D, crate::Precision::F16).unwrap();
            let head = Tensor2::from_fn(100, D, |r, c| all.get(r, c));
            m.append_rows(s, &head).unwrap();
            m.flush_stream(s).unwrap();
        }
        let (m2, _) = StorageManager::reopen(&root).unwrap();
        let tail = Tensor2::from_fn(50, D, |r, c| all.get(100 + r, c));
        m2.append_rows(s, &tail).unwrap();
        m2.flush_stream(s).unwrap();
        let reference = mgr();
        reference.append_rows(s, &all).unwrap();
        assert_eq!(
            m2.read_rows(s, 0, 150).unwrap(),
            reference.read_rows(s, 0, 150).unwrap()
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_recovers_the_post_delete_generation_only() {
        let root = tmp_root("regen");
        let s = StreamId::hidden(1, 0);
        let (expect, resident) = {
            let m = StorageManager::create_durable(&root, 2, D, crate::Precision::F16).unwrap();
            m.append_rows(s, &rows(128, 1)).unwrap(); // generation 0
            m.delete_stream(s);
            m.append_rows(s, &rows(64, 9)).unwrap(); // generation 1
            (m.read_rows(s, 0, 64).unwrap(), m.total_resident_bytes())
        };
        let (m2, report) = StorageManager::reopen(&root).unwrap();
        assert_eq!(report.streams_recovered, 1);
        assert_eq!(m2.n_tokens(s), 64);
        assert_eq!(m2.read_rows(s, 0, 64).unwrap(), expect);
        assert_eq!(m2.total_resident_bytes(), resident);
        // The journal's generation counter survived the restart too.
        assert_eq!(m2.journal().unwrap().generation(s), 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_truncates_a_torn_final_chunk_by_checksum() {
        let root = tmp_root("tornchunk");
        let s = StreamId::hidden(1, 0);
        {
            let m = StorageManager::create_durable(&root, 2, D, crate::Precision::F16).unwrap();
            m.append_rows(s, &rows(128, 1)).unwrap(); // chunks 0 and 1
        }
        // Tear chunk 1 on disk (simulates a torn write the journal already
        // vouched for): recovery must unmask it by chunk CRC and truncate
        // the stream to chunk 0.
        let k1 = ChunkKey {
            stream: s,
            chunk_idx: 1,
        };
        let torn = root.join(format!("dev{}/s1_l0_h_c1.bin", device_for(&k1, 2)));
        let len = std::fs::metadata(&torn).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&torn)
            .unwrap()
            .set_len(len / 2)
            .unwrap();
        let (m2, report) = StorageManager::reopen(&root).unwrap();
        assert_eq!(report.chunks_recovered, 1);
        assert_eq!(report.torn_chunks_discarded, 1);
        assert_eq!(
            report.orphan_chunks_removed, 1,
            "the torn chunk's file is swept"
        );
        assert_eq!(m2.n_tokens(s), 64);
        let reference = mgr();
        reference.append_rows(s, &rows(128, 1)).unwrap();
        assert_eq!(
            m2.read_rows(s, 0, 64).unwrap(),
            reference.read_rows(s, 0, 64).unwrap()
        );
        let tracked = m2.total_resident_bytes();
        assert_eq!(tracked, report.resident_bytes);
        assert_eq!(m2.delete_stream(s), tracked, "freed == tracked");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_after_torn_journal_tail_drops_the_unjournaled_suffix() {
        let root = tmp_root("tornjournal");
        let s = StreamId::hidden(1, 0);
        {
            let m = StorageManager::create_durable(&root, 2, D, crate::Precision::F16).unwrap();
            m.append_rows(s, &rows(128, 1)).unwrap(); // chunks 0 and 1 journaled
        }
        // Tear the journal mid-way through the last commit record: chunk 1
        // is durable on disk but no longer vouched for.
        let jpath = crate::journal::journal_path(&root);
        let len = std::fs::metadata(&jpath).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&jpath)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (m2, report) = StorageManager::reopen(&root).unwrap();
        assert!(report.journal_bytes_truncated > 0);
        assert_eq!(m2.n_tokens(s), 64);
        assert_eq!(
            report.orphan_chunks_removed, 1,
            "the unjournaled durable chunk is swept"
        );
        let reference = mgr();
        reference.append_rows(s, &rows(128, 1)).unwrap();
        assert_eq!(
            m2.read_rows(s, 0, 64).unwrap(),
            reference.read_rows(s, 0, 64).unwrap()
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn recover_runs_against_a_wrapped_store() {
        // The generic recovery entry point accepts a wrapper (here a
        // FaultStore around the reopened FileStore), so the fault matrix
        // can drive recovery itself through injected faults.
        let root = tmp_root("wrapped");
        let s = StreamId::hidden(1, 0);
        let expect = {
            let m = StorageManager::create_durable(&root, 2, D, crate::Precision::F16).unwrap();
            m.append_rows(s, &rows(64, 2)).unwrap();
            m.read_rows(s, 0, 64).unwrap()
        };
        let inner = Arc::new(FileStore::open(&root, 2).unwrap());
        let store = Arc::new(FaultStore::new(inner));
        // A transient blip during recovery's validation pass is retried.
        store.fail_reads(FaultTarget::Any, 1, true);
        let (m2, report) = StorageManager::recover(Arc::clone(&store), &root).unwrap();
        assert_eq!(report.streams_recovered, 1);
        assert_eq!(m2.read_rows(s, 0, 64).unwrap(), expect);
        std::fs::remove_dir_all(&root).unwrap();
    }

    // ---- Event-driven reactor read path ----

    use crate::reactor::Reactor;

    #[test]
    fn reactor_reads_bit_identical_to_sequential_at_every_iodepth() {
        let seq = mgr();
        let s = StreamId::hidden(1, 0);
        let t = rows(300, 3); // 4 full chunks + a 44-row tail
        seq.append_rows(s, &t).unwrap();
        let ranges = [
            (0, 300),
            (0, 256),
            (70, 200),
            (64, 128),
            (5, 20),
            (250, 300),
        ];
        for iodepth in [1usize, 2, 4, 8] {
            let reactor = Reactor::new(4, iodepth);
            let m = StorageManager::new(Arc::new(MemStore::new(4)), D)
                .with_reactor(Arc::clone(&reactor));
            assert_eq!(m.read_parallelism(), 4 * iodepth);
            m.append_rows(s, &t).unwrap();
            for &(a, b) in &ranges {
                assert_eq!(
                    m.read_rows(s, a, b).unwrap(),
                    seq.read_rows(s, a, b).unwrap(),
                    "iodepth {iodepth} range {a}..{b} diverged"
                );
            }
            assert!(
                reactor.ios_submitted() > 0,
                "multi-chunk ranges must ride the device queues"
            );
        }
    }

    #[test]
    fn reactor_takes_precedence_over_fanout_and_skips_small_ranges() {
        let reactor = Reactor::new(4, 2);
        let m = StorageManager::new(Arc::new(MemStore::new(4)), D)
            .with_read_fanout(4)
            .with_reactor(Arc::clone(&reactor));
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(256, 1)).unwrap();
        // ≤ 1 device chunk: read inline — neither engine sees it.
        let fanout_jobs = m.read_fanout_pool().unwrap().jobs_submitted();
        m.read_rows(s, 0, 64).unwrap();
        assert_eq!(reactor.ios_submitted(), 0);
        assert_eq!(m.read_fanout_pool().unwrap().jobs_submitted(), fanout_jobs);
        // Multi-chunk: the reactor serves it, not the fanout pool.
        m.read_rows(s, 0, 256).unwrap();
        assert_eq!(reactor.ios_submitted(), 4);
        assert_eq!(m.read_fanout_pool().unwrap().jobs_submitted(), fanout_jobs);
    }

    #[test]
    fn reactor_missing_state_surfaces_the_lowest_chunk_error() {
        let store = Arc::new(MemStore::new(4));
        let m = StorageManager::new(Arc::clone(&store), D).with_reactor(Reactor::new(4, 4));
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(256, 1)).unwrap();
        store.delete_stream(s);
        let err = m.read_rows(s, 0, 256).unwrap_err();
        assert_eq!(
            err,
            StorageError::MissingChunk {
                stream: s,
                chunk_idx: 0
            }
        );
    }

    #[test]
    fn reactor_read_racing_delete_and_restart_never_mixes_generations() {
        let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(2))));
        let mgr =
            Arc::new(StorageManager::new(Arc::clone(&store), D).with_reactor(Reactor::new(2, 4)));
        let s = StreamId::hidden(1, 0);
        mgr.append_rows(s, &rows(128, 1)).unwrap(); // generation 1: 2 chunks
        let mgr2 = Arc::clone(&mgr);
        store.on_nth_read(0, move || {
            mgr2.delete_stream(s);
            mgr2.append_rows(s, &rows(128, 2)).unwrap(); // generation 2
        });
        let got = mgr.read_rows(s, 0, 128).unwrap();
        let gen2 = rows(128, 2);
        for r in 0..128 {
            for c in 0..D {
                assert_eq!(got.get(r, c), f16_roundtrip(gen2.get(r, c)));
            }
        }
    }

    /// Assembles async-job deliveries like `read_rows` does, tracking
    /// resets so generation restarts discard the dead rows.
    struct AsyncAssemble {
        n_rows: usize,
        d_model: usize,
        out: Tensor2,
        resets: usize,
    }

    impl AsyncAssemble {
        fn new(n_rows: usize, d_model: usize) -> Self {
            Self {
                n_rows,
                d_model,
                out: Tensor2::zeros(n_rows, d_model),
                resets: 0,
            }
        }
    }

    impl RowSink for AsyncAssemble {
        fn deliver(&mut self, chunk: DeliveredRows) -> bool {
            for r in 0..chunk.rows.rows() {
                self.out
                    .row_mut(chunk.row_start + r)
                    .copy_from_slice(chunk.rows.row(r));
            }
            true
        }
        fn reset(&mut self) {
            self.out = Tensor2::zeros(self.n_rows, self.d_model);
            self.resets += 1;
        }
    }

    /// Drives one async job to its terminal outcome from the test thread
    /// (pump, nap on Pending — the driver's run queue in miniature).
    fn drive_job<S: ChunkStore>(
        job: &Arc<ReactorReadJob<S>>,
        sink: &mut AsyncAssemble,
    ) -> Result<(), StorageError> {
        loop {
            match job.pump(sink) {
                PumpOutcome::Done => return Ok(()),
                PumpOutcome::Failed(e) => return Err(e),
                PumpOutcome::Pending => std::thread::sleep(Duration::from_micros(100)),
            }
        }
    }

    #[test]
    fn async_reactor_job_is_bit_identical_to_read_rows() {
        let m = Arc::new(
            StorageManager::new(Arc::new(MemStore::new(4)), D).with_reactor(Reactor::new(4, 2)),
        );
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(300, 7)).unwrap(); // durable chunks + tail
        for (a, b) in [(0u64, 300u64), (64, 256), (5, 20), (250, 300), (0, 0)] {
            let job = m.begin_read_reactor(s, a, b, Arc::new(|| {}));
            assert_eq!(job.stream(), s);
            assert_eq!(job.range(), (a, b));
            let mut sink = AsyncAssemble::new((b - a) as usize, D);
            drive_job(&job, &mut sink).unwrap();
            assert_eq!(sink.out, m.read_rows(s, a, b).unwrap(), "range {a}..{b}");
            // Terminal outcomes are sticky.
            assert!(matches!(job.pump(&mut sink), PumpOutcome::Done));
        }
    }

    #[test]
    fn async_reactor_job_out_of_range_is_terminal() {
        let m = Arc::new(
            StorageManager::new(Arc::new(MemStore::new(4)), D).with_reactor(Reactor::new(4, 2)),
        );
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(10, 1)).unwrap();
        let job = m.begin_read_reactor(s, 0, 100, Arc::new(|| {}));
        let mut sink = AsyncAssemble::new(100, D);
        let err = drive_job(&job, &mut sink).unwrap_err();
        assert_eq!(
            err,
            StorageError::OutOfRange {
                stream: s,
                available: 10,
                requested: 100
            }
        );
        assert!(matches!(
            job.pump(&mut sink),
            PumpOutcome::Failed(StorageError::OutOfRange { .. })
        ));
    }

    #[test]
    fn async_reactor_job_failure_resolves_to_the_lowest_chunk_error() {
        let store = Arc::new(MemStore::new(4));
        let m =
            Arc::new(StorageManager::new(Arc::clone(&store), D).with_reactor(Reactor::new(4, 4)));
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(256, 1)).unwrap();
        store.delete_stream(s);
        let job = m.begin_read_reactor(s, 0, 256, Arc::new(|| {}));
        let mut sink = AsyncAssemble::new(256, D);
        let err = drive_job(&job, &mut sink).unwrap_err();
        assert_eq!(
            err,
            StorageError::MissingChunk {
                stream: s,
                chunk_idx: 0
            }
        );
    }

    #[test]
    fn async_reactor_job_racing_delete_restarts_onto_the_successor() {
        let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(2))));
        let m =
            Arc::new(StorageManager::new(Arc::clone(&store), D).with_reactor(Reactor::new(2, 4)));
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(128, 1)).unwrap(); // generation 1
        let m2 = Arc::clone(&m);
        store.on_nth_read(0, move || {
            m2.delete_stream(s);
            m2.append_rows(s, &rows(128, 2)).unwrap(); // generation 2
        });
        let job = m.begin_read_reactor(s, 0, 128, Arc::new(|| {}));
        let mut sink = AsyncAssemble::new(128, D);
        drive_job(&job, &mut sink).unwrap();
        assert!(sink.resets >= 1, "the dead generation must be discarded");
        let gen2 = rows(128, 2);
        for r in 0..128 {
            for c in 0..D {
                assert_eq!(sink.out.get(r, c), f16_roundtrip(gen2.get(r, c)));
            }
        }
    }
}
