//! The storage manager: append/read token-row streams as f16 chunks.

use std::collections::HashMap;
use std::sync::Arc;

use hc_tensor::Tensor2;
use parking_lot::Mutex;

use crate::backend::{ChunkStore, StoreStats};
use crate::chunk::{chunks_for_range, ChunkKey, CHUNK_TOKENS};
use crate::{Precision, StorageError, StreamId};

/// Per-stream append state.
#[derive(Debug, Default)]
struct StreamState {
    /// Total tokens appended (durable + buffered).
    n_tokens: u64,
    /// Tokens already written out in full chunks.
    n_durable: u64,
    /// Buffered rows of the partial tail chunk (`< CHUNK_TOKENS` rows,
    /// row-major f32).
    partial: Vec<f32>,
    /// Encoded bytes this stream currently holds in the backend. This is
    /// *resident* state, not traffic: rewriting a flushed tail chunk
    /// replaces its bytes instead of adding to them, so the figure equals
    /// exactly what [`ChunkStore::delete_stream`] would free — the number a
    /// capacity/quota tracker must account against.
    resident_bytes: u64,
    /// Encoded bytes of the currently-flushed partial tail chunk (subset of
    /// `resident_bytes`; replaced on re-flush, absorbed when the chunk
    /// completes).
    tail_bytes: u64,
}

/// Chunked f16 storage for token-row streams, generic over the backend.
///
/// All rows are `d_model` wide (hidden states, keys and values all have the
/// model dimension under MHA). Appends accumulate into 64-token chunks;
/// full chunks are written immediately, the partial tail is buffered until
/// [`StorageManager::flush_stream`] (the two-stage saver's daemon calls the
/// append path, so this buffering is exactly the paper's "chunk buffers").
pub struct StorageManager<S: ChunkStore> {
    store: Arc<S>,
    d_model: usize,
    precision: Precision,
    /// Thread budget for chunk encode/decode (shared with the two-stage
    /// saver's daemon and the restore prefetcher, which run through this
    /// manager).
    parallel: hc_tensor::ParallelConfig,
    streams: Mutex<HashMap<StreamId, StreamState>>,
}

impl<S: ChunkStore> StorageManager<S> {
    /// Creates a manager writing rows of width `d_model` to `store`, stored
    /// as fp16 (the paper's format).
    pub fn new(store: Arc<S>, d_model: usize) -> Self {
        Self::with_precision(store, d_model, Precision::F16)
    }

    /// Creates a manager with an explicit storage precision (int8 enables
    /// the §7 quantized-hidden-state extension).
    pub fn with_precision(store: Arc<S>, d_model: usize, precision: Precision) -> Self {
        assert!(d_model > 0, "d_model must be positive");
        Self {
            store,
            d_model,
            precision,
            parallel: hc_tensor::ParallelConfig::serial(),
            streams: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the thread budget used for chunk encode/decode. The parallel
    /// codec is bit-identical to the serial one, so this changes wall-clock
    /// only, never stored bytes.
    pub fn with_parallel(mut self, parallel: hc_tensor::ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Thread budget used for chunk encode/decode.
    pub fn parallel(&self) -> hc_tensor::ParallelConfig {
        self.parallel
    }

    /// Storage precision in use.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Row width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Backend handle (for stats and tests).
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// Tokens appended to `stream` so far.
    pub fn n_tokens(&self, stream: StreamId) -> u64 {
        self.streams.lock().get(&stream).map_or(0, |s| s.n_tokens)
    }

    /// Appends `rows` (an `n × d_model` tensor) to the stream.
    ///
    /// Full chunks are encoded to f16 and written to the backend right away;
    /// the remainder is buffered.
    ///
    /// # Panics
    /// Panics when the row width disagrees with the manager's `d_model`.
    pub fn append_rows(&self, stream: StreamId, rows: &Tensor2) -> Result<(), StorageError> {
        assert_eq!(rows.cols(), self.d_model, "row width mismatch");
        if rows.rows() == 0 {
            return Ok(());
        }
        let mut streams = self.streams.lock();
        let state = streams.entry(stream).or_default();
        state.partial.extend_from_slice(rows.as_slice());
        state.n_tokens += rows.rows() as u64;

        // Drain any full chunks from the buffer.
        let chunk_elems = CHUNK_TOKENS as usize * self.d_model;
        while state.partial.len() >= chunk_elems {
            let chunk_idx = (state.n_durable / CHUNK_TOKENS) as u32;
            let rest = state.partial.split_off(chunk_elems);
            let full = std::mem::replace(&mut state.partial, rest);
            let bytes = self
                .precision
                .encode_par(&full, self.d_model, &self.parallel);
            self.store
                .write_chunk(ChunkKey { stream, chunk_idx }, &bytes)?;
            // The full chunk lands at the index a flushed tail (if any)
            // occupied, replacing those bytes rather than adding to them.
            state.resident_bytes += bytes.len() as u64 - state.tail_bytes;
            state.tail_bytes = 0;
            state.n_durable += CHUNK_TOKENS;
        }
        Ok(())
    }

    /// Convenience: appends a single token row.
    pub fn append_row(&self, stream: StreamId, row: &[f32]) -> Result<(), StorageError> {
        let t = Tensor2::from_vec(1, row.len(), row.to_vec());
        self.append_rows(stream, &t)
    }

    /// Writes the buffered partial tail chunk (if any) to the backend. The
    /// buffer is retained so later appends can extend and rewrite the tail.
    pub fn flush_stream(&self, stream: StreamId) -> Result<(), StorageError> {
        let mut streams = self.streams.lock();
        if let Some(state) = streams.get_mut(&stream) {
            if !state.partial.is_empty() {
                let chunk_idx = (state.n_durable / CHUNK_TOKENS) as u32;
                let bytes = self
                    .precision
                    .encode_par(&state.partial, self.d_model, &self.parallel);
                self.store
                    .write_chunk(ChunkKey { stream, chunk_idx }, &bytes)?;
                // Re-flushing replaces the previous tail image in place.
                state.resident_bytes += bytes.len() as u64 - state.tail_bytes;
                state.tail_bytes = bytes.len() as u64;
            }
        }
        Ok(())
    }

    /// Flushes every stream of `session`.
    pub fn flush_session(&self, session: u64) -> Result<(), StorageError> {
        let ids: Vec<StreamId> = {
            let streams = self.streams.lock();
            streams
                .keys()
                .filter(|s| s.session == session)
                .cloned()
                .collect()
        };
        for id in ids {
            self.flush_stream(id)?;
        }
        Ok(())
    }

    /// Reads token rows `[start, end)` of `stream` as an f32 tensor
    /// (values carry the f16 round-trip). Serves durable chunks from the
    /// backend and the unflushed tail from the buffer.
    pub fn read_rows(
        &self,
        stream: StreamId,
        start: u64,
        end: u64,
    ) -> Result<Tensor2, StorageError> {
        let streams = self.streams.lock();
        let state = streams.get(&stream);
        let available = state.map_or(0, |s| s.n_tokens);
        if end > available {
            return Err(StorageError::OutOfRange {
                stream,
                available,
                requested: end,
            });
        }
        let n = (end - start) as usize;
        let mut out = Tensor2::zeros(n, self.d_model);
        if n == 0 {
            return Ok(out);
        }
        let state = state.expect("available > 0 implies state exists");
        for slice in chunks_for_range(start, end) {
            let chunk_start_token = slice.chunk_idx as u64 * CHUNK_TOKENS;
            let key = ChunkKey {
                stream,
                chunk_idx: slice.chunk_idx,
            };
            // Rows of this chunk that are durable come from the backend;
            // otherwise they live in the partial buffer.
            let durable = state.n_durable;
            let rows: Vec<f32> = if chunk_start_token + slice.start_in_chunk + slice.len <= durable
            {
                let bytes = self.store.read_chunk(key)?;
                self.precision
                    .decode_par(&bytes, self.d_model, &self.parallel)
            } else {
                // Tail chunk: rebuild from buffer (buffer rows start at
                // token n_durable == chunk_start_token for the tail).
                debug_assert_eq!(chunk_start_token, durable);
                // Apply the same quantization a durable path would.
                self.precision.decode_par(
                    &self
                        .precision
                        .encode_par(&state.partial, self.d_model, &self.parallel),
                    self.d_model,
                    &self.parallel,
                )
            };
            let src_row0 = slice.start_in_chunk as usize;
            let dst_row0 = (chunk_start_token + slice.start_in_chunk - start) as usize;
            for r in 0..slice.len as usize {
                let src = &rows[(src_row0 + r) * self.d_model..(src_row0 + r + 1) * self.d_model];
                out.row_mut(dst_row0 + r).copy_from_slice(src);
            }
        }
        Ok(out)
    }

    /// Backend bytes currently held by `stream` (durable chunks including
    /// the flushed tail; rows still sitting in the partial buffer occupy no
    /// backend bytes until a flush).
    pub fn stream_bytes(&self, stream: StreamId) -> u64 {
        self.streams
            .lock()
            .get(&stream)
            .map_or(0, |s| s.resident_bytes)
    }

    /// Backend bytes currently held by every stream of `session` — the
    /// figure a quota tracker charges, and exactly what
    /// [`StorageManager::delete_session`] will report as freed.
    pub fn session_bytes(&self, session: u64) -> u64 {
        self.streams
            .lock()
            .iter()
            .filter(|(id, _)| id.session == session)
            .map(|(_, s)| s.resident_bytes)
            .sum()
    }

    /// Backend bytes currently held across all streams.
    pub fn total_resident_bytes(&self) -> u64 {
        self.streams.lock().values().map(|s| s.resident_bytes).sum()
    }

    /// Distinct sessions with any tracked stream state, ascending.
    pub fn sessions(&self) -> Vec<u64> {
        self.streams
            .lock()
            .keys()
            .map(|s| s.session)
            .collect::<std::collections::BTreeSet<u64>>()
            .into_iter()
            .collect()
    }

    /// Deletes one stream (tracked state + backend chunks); returns bytes
    /// freed in the backend. This is the cache controller's demotion
    /// primitive: dropping a layer's hidden/K/V stream while leaving the
    /// session's other streams intact.
    pub fn delete_stream(&self, stream: StreamId) -> u64 {
        let tracked = {
            let mut streams = self.streams.lock();
            streams.remove(&stream).map_or(0, |s| s.resident_bytes)
        };
        let freed = self.store.delete_stream(stream);
        debug_assert_eq!(
            freed, tracked,
            "resident-byte tracking diverged from the backend for {stream:?}"
        );
        freed
    }

    /// Deletes all state of `session`; returns bytes freed in the backend.
    /// The count equals the sum the tracking APIs reported
    /// ([`StorageManager::session_bytes`]), so callers can release quota by
    /// exactly this amount.
    pub fn delete_session(&self, session: u64) -> u64 {
        let ids: Vec<StreamId> = {
            let mut streams = self.streams.lock();
            let ids: Vec<StreamId> = streams
                .keys()
                .filter(|s| s.session == session)
                .cloned()
                .collect();
            for id in &ids {
                streams.remove(id);
            }
            ids
        };
        ids.iter().map(|id| self.store.delete_stream(*id)).sum()
    }

    /// Backend IO statistics.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStore;
    use hc_tensor::f16::f16_roundtrip;

    const D: usize = 8;

    fn mgr() -> StorageManager<MemStore> {
        StorageManager::new(Arc::new(MemStore::new(4)), D)
    }

    fn rows(n: usize, seed: usize) -> Tensor2 {
        Tensor2::from_fn(n, D, |r, c| ((seed + r * D + c) % 97) as f32 * 0.25 - 12.0)
    }

    #[test]
    fn roundtrip_small_within_one_chunk() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        let t = rows(10, 0);
        m.append_rows(s, &t).unwrap();
        let back = m.read_rows(s, 0, 10).unwrap();
        for r in 0..10 {
            for c in 0..D {
                assert_eq!(back.get(r, c), f16_roundtrip(t.get(r, c)));
            }
        }
    }

    #[test]
    fn roundtrip_across_chunk_boundaries() {
        let m = mgr();
        let s = StreamId::hidden(2, 3);
        let t = rows(200, 5);
        m.append_rows(s, &t).unwrap();
        let back = m.read_rows(s, 50, 150).unwrap();
        assert_eq!(back.shape(), (100, D));
        for r in 0..100 {
            assert_eq!(back.get(r, 0), f16_roundtrip(t.get(50 + r, 0)));
        }
    }

    #[test]
    fn incremental_appends_match_bulk() {
        let m1 = mgr();
        let m2 = mgr();
        let s = StreamId::hidden(1, 1);
        let t = rows(130, 9);
        m1.append_rows(s, &t).unwrap();
        for r in 0..130 {
            m2.append_row(s, t.row(r)).unwrap();
        }
        let a = m1.read_rows(s, 0, 130).unwrap();
        let b = m2.read_rows(s, 0, 130).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn full_chunks_are_written_eagerly() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(64, 0)).unwrap();
        assert_eq!(m.stats().total_writes(), 1, "full chunk must flush eagerly");
        m.append_rows(s, &rows(63, 1)).unwrap();
        assert_eq!(
            m.stats().total_writes(),
            1,
            "partial chunk must stay buffered"
        );
        m.append_rows(s, &rows(1, 2)).unwrap();
        assert_eq!(m.stats().total_writes(), 2, "chunk completes at 128 tokens");
    }

    #[test]
    fn reads_served_from_unflushed_tail() {
        let m = mgr();
        let s = StreamId::hidden(1, 2);
        let t = rows(70, 3);
        m.append_rows(s, &t).unwrap();
        // Tokens 64..70 are only in the buffer.
        let back = m.read_rows(s, 60, 70).unwrap();
        assert_eq!(back.get(9, 1), f16_roundtrip(t.get(69, 1)));
    }

    #[test]
    fn flush_then_extend_tail_chunk() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(70, 1)).unwrap();
        m.flush_stream(s).unwrap();
        m.append_rows(s, &rows(10, 2)).unwrap();
        m.flush_stream(s).unwrap();
        let back = m.read_rows(s, 0, 80).unwrap();
        assert_eq!(back.rows(), 80);
        // Tail rows come from the second batch.
        assert_eq!(back.get(75, 0), f16_roundtrip(rows(10, 2).get(5, 0)));
    }

    #[test]
    fn out_of_range_read_is_an_error() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(5, 0)).unwrap();
        let err = m.read_rows(s, 0, 6).unwrap_err();
        assert!(matches!(
            err,
            StorageError::OutOfRange {
                available: 5,
                requested: 6,
                ..
            }
        ));
    }

    #[test]
    fn empty_read_is_ok() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        let t = m.read_rows(s, 0, 0).unwrap();
        assert_eq!(t.rows(), 0);
    }

    #[test]
    fn streams_are_independent() {
        let m = mgr();
        let a = StreamId::hidden(1, 0);
        let b = StreamId::key(1, 0);
        m.append_rows(a, &rows(10, 1)).unwrap();
        m.append_rows(b, &rows(20, 2)).unwrap();
        assert_eq!(m.n_tokens(a), 10);
        assert_eq!(m.n_tokens(b), 20);
    }

    #[test]
    fn delete_session_frees_all_streams() {
        let m = mgr();
        m.append_rows(StreamId::hidden(7, 0), &rows(64, 0)).unwrap();
        m.append_rows(StreamId::key(7, 1), &rows(64, 1)).unwrap();
        m.append_rows(StreamId::hidden(8, 0), &rows(64, 2)).unwrap();
        let freed = m.delete_session(7);
        assert_eq!(freed, 2 * 64 * D as u64 * 2); // 2 chunks, f16
        assert_eq!(m.n_tokens(StreamId::hidden(7, 0)), 0);
        assert_eq!(m.n_tokens(StreamId::hidden(8, 0)), 64);
    }

    #[test]
    fn int8_precision_roundtrip_within_bound() {
        let m =
            StorageManager::with_precision(Arc::new(MemStore::new(2)), D, crate::Precision::Int8);
        let s = StreamId::hidden(1, 0);
        let t = rows(100, 4);
        m.append_rows(s, &t).unwrap();
        let back = m.read_rows(s, 0, 100).unwrap();
        for r in 0..100 {
            let bound = hc_tensor::quant::row_error_bound(t.row(r));
            for c in 0..D {
                assert!(
                    (back.get(r, c) - t.get(r, c)).abs() <= bound,
                    "({r},{c}): {} vs {}",
                    back.get(r, c),
                    t.get(r, c)
                );
            }
        }
    }

    #[test]
    fn int8_halves_stored_bytes() {
        // Use a realistic row width so the 4-byte per-row scale is
        // negligible (at D=4096 it is 0.1%).
        const WIDE: usize = 256;
        let m16 = StorageManager::new(Arc::new(MemStore::new(2)), WIDE);
        let m8 = StorageManager::with_precision(
            Arc::new(MemStore::new(2)),
            WIDE,
            crate::Precision::Int8,
        );
        let s = StreamId::hidden(1, 0);
        let t = Tensor2::from_fn(128, WIDE, |r, c| ((r + c) % 23) as f32 * 0.5 - 5.0);
        m16.append_rows(s, &t).unwrap();
        m8.append_rows(s, &t).unwrap();
        let b16 = m16.stats().total_bytes_written();
        let b8 = m8.stats().total_bytes_written();
        assert!((b8 as f64) < 0.55 * b16 as f64, "int8 {b8} vs f16 {b16}");
    }

    #[test]
    fn resident_bytes_track_backend_exactly_under_tail_rewrites() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        // Nothing durable yet: 70 rows = 1 full chunk + 6 buffered.
        m.append_rows(s, &rows(70, 1)).unwrap();
        assert_eq!(m.stream_bytes(s), 64 * D as u64 * 2);
        // Flushing the 6-row tail adds exactly its encoded bytes.
        m.flush_stream(s).unwrap();
        assert_eq!(m.stream_bytes(s), 70 * D as u64 * 2);
        // Re-flushing a grown tail replaces, not adds.
        m.append_rows(s, &rows(10, 2)).unwrap();
        m.flush_stream(s).unwrap();
        assert_eq!(m.stream_bytes(s), 80 * D as u64 * 2);
        // Completing the chunk absorbs the flushed tail in place.
        m.append_rows(s, &rows(48, 3)).unwrap();
        assert_eq!(m.stream_bytes(s), 128 * D as u64 * 2);
        // Total traffic exceeds residency (rewrites counted every time)...
        assert!(m.stats().total_bytes_written() > m.stream_bytes(s));
        // ...but delete frees exactly the resident figure.
        assert_eq!(m.delete_stream(s), 128 * D as u64 * 2);
        assert_eq!(m.stream_bytes(s), 0);
    }

    #[test]
    fn session_bytes_sum_streams_and_match_delete_freed() {
        let m = mgr();
        m.append_rows(StreamId::hidden(7, 0), &rows(80, 0)).unwrap();
        m.append_rows(StreamId::key(7, 1), &rows(70, 1)).unwrap();
        m.append_rows(StreamId::value(7, 1), &rows(70, 2)).unwrap();
        m.append_rows(StreamId::hidden(8, 0), &rows(64, 3)).unwrap();
        m.flush_session(7).unwrap();
        let tracked = m.session_bytes(7);
        assert_eq!(tracked, (80 + 70 + 70) * D as u64 * 2);
        assert_eq!(m.total_resident_bytes(), tracked + 64 * D as u64 * 2);
        assert_eq!(m.sessions(), vec![7, 8]);
        let freed = m.delete_session(7);
        assert_eq!(freed, tracked, "freed bytes must equal the tracked figure");
        assert_eq!(m.session_bytes(7), 0);
        assert_eq!(m.sessions(), vec![8]);
    }

    #[test]
    fn unflushed_tails_occupy_no_backend_bytes() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(10, 0)).unwrap();
        assert_eq!(m.stream_bytes(s), 0, "buffered rows are not resident");
        assert_eq!(m.delete_session(1), 0);
    }

    #[test]
    fn chunks_spread_across_devices() {
        let m = mgr();
        let s = StreamId::hidden(1, 0);
        m.append_rows(s, &rows(64 * 8, 0)).unwrap();
        let stats = m.stats();
        for (i, d) in stats.devices.iter().enumerate() {
            assert_eq!(d.writes, 2, "device {i} should hold 2 of 8 chunks");
        }
    }
}
