//! Event-driven IO reactor: per-device submission queues + a shared
//! compute run queue, so in-flight restores are bounded by memory and
//! iodepth instead of threads.
//!
//! The thread-per-lane stack ([`crate::fanout::FanoutPool`] +
//! `hc-cachectl`'s `RestoreScheduler`) clamps in-flight restores to the
//! host thread grant: every concurrently-restoring session pins one
//! blocking worker for its whole lifetime. That is fine for 8-session
//! benches and wrong for thousands of concurrent restores overlapping IO
//! on a handful of devices. The reactor inverts the ownership:
//!
//! * **Per-device submission queues** ([`Reactor`]): each modeled device
//!   gets its own queue served by `iodepth` dedicated IO threads, the
//!   software shape of an iodepth-N NVMe submission queue. IO threads
//!   spend their lives blocked on device service time (they are not
//!   CPU-bearing), and their count is `n_devices × iodepth` — **fixed**,
//!   independent of how many restores are in flight.
//! * **Completion-driven state machines**: each read advances through
//!   `planned → submitted → decoded → placed`. A completion does not get
//!   a thread; it stages its raw bytes on the owning read job and nudges
//!   the job's owner through a notify callback.
//! * **Shared compute run queue** ([`WorkQueue`]): a small pool of compute
//!   workers (owned by the restore driver, counted against the host
//!   grant) pops ready work tokens and advances whichever state machine
//!   has staged completions — instead of one thread per lane per restore.
//!
//! Determinism: the reactor moves *scheduling*, never *content*. Decoding
//! and placement reuse the manager's sequential-path helpers, byte
//! ranges are disjoint, and errors resolve to the lowest slice index, so
//! reactor-driven reads are bit-identical to the sequential walk at every
//! `iodepth`/worker combination (see `tests/storage_concurrency.rs`).

// hc-analyze: lock-order rx < state
// (`rx`: a device queue's shared receiver; `state`: the compute run
// queue. The two planes never nest today — the declaration pins the
// only legal direction if they ever do.)

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::sync::{Condvar, Mutex as StdMutex, PoisonError};
use std::thread::JoinHandle;

use parking_lot::Mutex;

/// A unit of submitted IO: owns everything it touches (`'static`), runs
/// exactly once on one of the owning device's IO threads.
type IoJob = Box<dyn FnOnce() + Send + 'static>;

/// One modeled device's submission queue and its `iodepth` IO threads.
struct DeviceQueue {
    /// Submission side; `None` only during drop.
    tx: Option<mpsc::Sender<IoJob>>,
    threads: Vec<JoinHandle<()>>,
}

impl DeviceQueue {
    fn new(device: usize, iodepth: usize) -> Self {
        let (tx, rx) = mpsc::channel::<IoJob>();
        // `iodepth` threads share one queue: up to `iodepth` requests of
        // this device are in flight at once; the rest wait their turn in
        // submission order.
        let rx = Arc::new(Mutex::new(rx));
        let threads = (0..iodepth)
            .map(|slot| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("hc-reactor-d{device}q{slot}"))
                    .spawn(move || loop {
                        // hc-analyze: allow(blocking_under_lock) the rx guard IS the handoff: iodepth threads take turns receiving, and the guard drops before the job runs
                        let job = rx.lock().recv();
                        match job {
                            // Panic isolation, same contract as FanoutPool:
                            // a buggy ChunkStore must not shrink the device
                            // queue and strand queued submissions.
                            Ok(job) => {
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => return,
                        }
                    })
                    // hc-analyze: allow(panic) thread-spawn failure at construction is a host misconfiguration; no caller handles a reactor without its IO plane
                    .expect("spawn reactor IO thread")
            })
            .collect();
        Self {
            tx: Some(tx),
            threads,
        }
    }
}

impl Drop for DeviceQueue {
    fn drop(&mut self) {
        self.tx = None;
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The IO plane: per-device submission queues with configurable iodepth,
/// plus the process-wide restore-in-flight gauge.
///
/// Attach one to a manager with
/// [`crate::manager::StorageManager::with_reactor`]; `read_rows_streaming`
/// then routes multi-chunk reads through the device queues, and the async
/// [`crate::manager::ReactorReadJob`] API lets a driver keep thousands of
/// restores in flight from a fixed worker pool.
pub struct Reactor {
    devices: Vec<DeviceQueue>,
    iodepth: usize,
    /// Chunk IOs ever submitted — observability for adaptive-path tests.
    ios_submitted: AtomicU64,
    /// Restores admitted and not yet completed (driver-maintained gauge).
    in_flight: AtomicU64,
    peak_in_flight: AtomicU64,
    /// Monotonic totals behind the gauge, so a driver can close the
    /// books: after a drained batch, admitted == completed.
    admitted_total: AtomicU64,
    completed_total: AtomicU64,
}

impl Reactor {
    /// Spawns the IO plane for `n_devices` devices (clamped to ≥ 1) with
    /// `iodepth` requests in flight per device (clamped to ≥ 1).
    ///
    /// Total IO threads: `n_devices × iodepth`. They block on device
    /// service time, not CPU, so they are budgeted like the manager's
    /// prefetch threads rather than compute workers.
    pub fn new(n_devices: usize, iodepth: usize) -> Arc<Self> {
        let n_devices = n_devices.max(1);
        let iodepth = iodepth.max(1);
        Arc::new(Self {
            devices: (0..n_devices)
                .map(|d| DeviceQueue::new(d, iodepth))
                .collect(),
            iodepth,
            ios_submitted: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
            admitted_total: AtomicU64::new(0),
            completed_total: AtomicU64::new(0),
        })
    }

    /// Number of per-device submission queues.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Requests in flight per device.
    pub fn iodepth(&self) -> usize {
        self.iodepth
    }

    /// Enqueues `job` on `device`'s submission queue. Jobs on one device
    /// start in submission order, up to `iodepth` in flight; completion
    /// reporting is the caller's business (through state captured by the
    /// closure). Submission never blocks.
    pub fn submit_io(&self, device: usize, job: impl FnOnce() + Send + 'static) {
        // hc-analyze: allow(relaxed) monotonic observability counter; no reader pairs it with other state
        self.ios_submitted.fetch_add(1, Ordering::Relaxed);
        self.devices[device % self.devices.len()]
            .tx
            .as_ref()
            // hc-analyze: allow(panic) tx is Some for the reactor's whole life; only Drop clears it, and Drop requires exclusive ownership
            .expect("reactor is live outside drop")
            .send(Box::new(job))
            // hc-analyze: allow(panic) device IO threads hold rx until tx drops, so an unbounded send cannot fail
            .expect("reactor IO threads outlive submissions");
    }

    /// Chunk IOs ever submitted through this reactor.
    pub fn ios_submitted(&self) -> u64 {
        // hc-analyze: allow(relaxed) monotonic observability counter; no reader pairs it with other state
        self.ios_submitted.load(Ordering::Relaxed)
    }

    /// Marks one restore admitted (gauge up, peak tracked). The gauge and
    /// totals use Release on the write side / Acquire on the read side:
    /// drivers close the books across threads (admitted == completed after
    /// a drained batch) and gate admission windows on these values.
    pub fn restore_admitted(&self) {
        self.admitted_total.fetch_add(1, Ordering::AcqRel);
        let now = self.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
        self.peak_in_flight.fetch_max(now, Ordering::AcqRel);
    }

    /// Marks one restore completed (gauge down).
    pub fn restore_completed(&self) {
        self.completed_total.fetch_add(1, Ordering::AcqRel);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Restores ever admitted through this reactor.
    pub fn restores_admitted_total(&self) -> u64 {
        self.admitted_total.load(Ordering::Acquire)
    }

    /// Restores ever completed through this reactor.
    pub fn restores_completed_total(&self) -> u64 {
        self.completed_total.load(Ordering::Acquire)
    }

    /// Restores currently admitted and not completed.
    pub fn restores_in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Acquire)
    }

    /// High-water mark of [`Self::restores_in_flight`]. This is the
    /// headline "10k restores on a 4-thread grant" number: with the
    /// thread-per-lane scheduler it can never exceed the thread budget,
    /// with the reactor it is bounded by admission (memory), not threads.
    pub fn peak_restores_in_flight(&self) -> u64 {
        self.peak_in_flight.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("n_devices", &self.n_devices())
            .field("iodepth", &self.iodepth)
            .finish()
    }
}

/// State of the shared run queue.
struct WorkQueueState {
    tokens: VecDeque<usize>,
    closed: bool,
}

/// The shared compute run queue: an MPMC queue of ready-work tokens
/// (machine indices) popped by the restore driver's compute workers.
///
/// Tokens carry no payload — a token means "machine `i` has staged work;
/// some worker should advance it". Pushing after [`WorkQueue::close`] is a
/// silent no-op so late IO completions (whose notify callbacks outlive the
/// driver) cannot wedge or panic.
pub struct WorkQueue {
    state: StdMutex<WorkQueueState>,
    ready: Condvar,
}

impl WorkQueue {
    /// An open, empty queue.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            state: StdMutex::new(WorkQueueState {
                tokens: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        })
    }

    /// Enqueues a work token and wakes one worker. No-op after `close`.
    ///
    /// Poisoning is recovered rather than propagated throughout: the state
    /// is a `VecDeque` plus a flag, both valid at every unlock point, so a
    /// panicking worker elsewhere must not take the whole run queue (and
    /// every sibling restore) down with it.
    pub fn push(&self, token: usize) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.closed {
            return;
        }
        st.tokens.push_back(token);
        drop(st);
        self.ready.notify_one();
    }

    /// Blocks for the next token. Returns `None` once the queue is closed
    /// and drained — the worker's signal to exit.
    pub fn pop(&self) -> Option<usize> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(token) = st.tokens.pop_front() {
                return Some(token);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: workers drain the remaining tokens, then `pop`
    /// returns `None`; later pushes are dropped.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.closed = true;
        drop(st);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::{Duration, Instant};

    #[test]
    fn geometry_is_clamped() {
        let r = Reactor::new(0, 0);
        assert_eq!(r.n_devices(), 1);
        assert_eq!(r.iodepth(), 1);
        let r = Reactor::new(4, 2);
        assert_eq!(r.n_devices(), 4);
        assert_eq!(r.iodepth(), 2);
    }

    #[test]
    fn every_submitted_io_runs_exactly_once() {
        let r = Reactor::new(3, 2);
        let hits = Arc::new(AtomicUsize::new(0));
        for i in 0..96 {
            let hits = Arc::clone(&hits);
            r.submit_io(i % 3, move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(r.ios_submitted(), 96);
        // Drop joins every device thread after the queues drain.
        drop(Arc::try_unwrap(r).expect("sole owner"));
        assert_eq!(hits.load(Ordering::Relaxed), 96);
    }

    #[test]
    fn iodepth_requests_overlap_on_one_device() {
        // 4 sleeping jobs on one device at iodepth 4 finish in ~1 nap.
        let r = Reactor::new(1, 4);
        let nap = Duration::from_millis(20);
        let (tx, rx) = mpsc::channel();
        let t0 = Instant::now();
        for i in 0..4 {
            let tx = tx.clone();
            r.submit_io(0, move || {
                std::thread::sleep(nap);
                let _ = tx.send(i);
            });
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 4);
        let elapsed = t0.elapsed();
        assert!(elapsed < nap * 3, "iodepth must overlap: {elapsed:?}");
    }

    #[test]
    fn a_panicking_io_job_does_not_kill_its_device_queue() {
        let r = Reactor::new(1, 1);
        r.submit_io(0, || panic!("buggy store"));
        let (tx, rx) = mpsc::channel();
        r.submit_io(0, move || {
            let _ = tx.send(7);
        });
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn restore_gauge_tracks_peak() {
        let r = Reactor::new(1, 1);
        r.restore_admitted();
        r.restore_admitted();
        r.restore_admitted();
        assert_eq!(r.restores_in_flight(), 3);
        r.restore_completed();
        r.restore_admitted();
        r.restore_completed();
        assert_eq!(r.restores_in_flight(), 2);
        assert_eq!(r.peak_restores_in_flight(), 3);
    }

    #[test]
    fn work_queue_delivers_fifo_and_drains_on_close() {
        let q = WorkQueue::new();
        q.push(1);
        q.push(2);
        q.close();
        q.push(3); // dropped: queue is closed
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn work_queue_wakes_blocked_workers() {
        let q = WorkQueue::new();
        let popped = Arc::new(AtomicUsize::new(usize::MAX));
        let worker = {
            let q = Arc::clone(&q);
            let popped = Arc::clone(&popped);
            std::thread::spawn(move || {
                while let Some(t) = q.pop() {
                    popped.store(t, Ordering::SeqCst);
                }
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        q.push(42);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(popped.load(Ordering::SeqCst), 42);
        q.close();
        worker.join().unwrap();
    }
}
