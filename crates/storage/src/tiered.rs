//! Hierarchical (DRAM + SSD) chunk store.
//!
//! §4 of the paper: "Previous research has suggested using a hierarchical
//! storage backend that combines host DRAM and SSDs (AttentionStore). They
//! also integrate prefetching and caching strategies … orthogonal to our
//! work and can be incorporated to enhance performance further."
//!
//! [`TieredStore`] incorporates it: a byte-capacity DRAM front cache over a
//! capacity backing store, write-through on saves, promote-on-read with LRU
//! eviction. Hot contexts restore from DRAM at link speed; cold ones stream
//! from the backing SSDs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{ChunkStore, StoreStats};
use crate::chunk::ChunkKey;
use crate::{StorageError, StreamId};

struct FrontCache {
    chunks: HashMap<ChunkKey, (Vec<u8>, u64)>,
    used_bytes: u64,
    clock: u64,
}

impl FrontCache {
    fn touch_get(&mut self, key: &ChunkKey) -> Option<Vec<u8>> {
        self.clock += 1;
        let clock = self.clock;
        self.chunks.get_mut(key).map(|(data, stamp)| {
            *stamp = clock;
            data.clone()
        })
    }

    fn insert(&mut self, key: ChunkKey, data: &[u8], capacity: u64) {
        if data.len() as u64 > capacity {
            return;
        }
        self.clock += 1;
        if let Some((old, _)) = self.chunks.remove(&key) {
            self.used_bytes -= old.len() as u64;
        }
        while self.used_bytes + data.len() as u64 > capacity && !self.chunks.is_empty() {
            let victim = *self
                .chunks
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k)
                .expect("non-empty");
            if let Some((old, _)) = self.chunks.remove(&victim) {
                self.used_bytes -= old.len() as u64;
            }
        }
        self.used_bytes += data.len() as u64;
        self.chunks.insert(key, (data.to_vec(), self.clock));
    }

    fn delete_stream(&mut self, stream: StreamId) {
        let keys: Vec<ChunkKey> = self
            .chunks
            .keys()
            .filter(|k| k.stream == stream)
            .cloned()
            .collect();
        for k in keys {
            if let Some((old, _)) = self.chunks.remove(&k) {
                self.used_bytes -= old.len() as u64;
            }
        }
    }
}

/// DRAM-front / SSD-back hierarchical chunk store.
pub struct TieredStore<B: ChunkStore> {
    back: Arc<B>,
    front: Mutex<FrontCache>,
    front_capacity: u64,
    front_hits: AtomicU64,
    front_misses: AtomicU64,
}

impl<B: ChunkStore> TieredStore<B> {
    /// Wraps `back` with a DRAM cache of `front_capacity_bytes`.
    pub fn new(back: Arc<B>, front_capacity_bytes: u64) -> Self {
        Self {
            back,
            front: Mutex::new(FrontCache {
                chunks: HashMap::new(),
                used_bytes: 0,
                clock: 0,
            }),
            front_capacity: front_capacity_bytes,
            front_hits: AtomicU64::new(0),
            front_misses: AtomicU64::new(0),
        }
    }

    /// Reads served from DRAM so far.
    pub fn front_hits(&self) -> u64 {
        self.front_hits.load(Ordering::Relaxed)
    }

    /// Reads that had to go to the backing store.
    pub fn front_misses(&self) -> u64 {
        self.front_misses.load(Ordering::Relaxed)
    }

    /// Bytes currently cached in DRAM.
    pub fn front_used_bytes(&self) -> u64 {
        self.front.lock().used_bytes
    }

    /// Backing store handle.
    pub fn back(&self) -> &Arc<B> {
        &self.back
    }
}

impl<B: ChunkStore> ChunkStore for TieredStore<B> {
    fn write_chunk(&self, key: ChunkKey, data: &[u8]) -> Result<(), StorageError> {
        // Write-through: durability lives in the backing store; the front
        // keeps the hot copy.
        self.back.write_chunk(key, data)?;
        self.front.lock().insert(key, data, self.front_capacity);
        Ok(())
    }

    fn read_chunk(&self, key: ChunkKey) -> Result<Vec<u8>, StorageError> {
        if let Some(data) = self.front.lock().touch_get(&key) {
            self.front_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(data);
        }
        let data = self.back.read_chunk(key)?;
        self.front_misses.fetch_add(1, Ordering::Relaxed);
        // Promote on read.
        self.front.lock().insert(key, &data, self.front_capacity);
        Ok(data)
    }

    fn contains(&self, key: ChunkKey) -> bool {
        self.back.contains(key)
    }

    fn delete_stream(&self, stream: StreamId) -> u64 {
        self.front.lock().delete_stream(stream);
        self.back.delete_stream(stream)
    }

    fn n_devices(&self) -> usize {
        self.back.n_devices()
    }

    fn stats(&self) -> StoreStats {
        self.back.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStore;

    fn key(chunk_idx: u32) -> ChunkKey {
        ChunkKey {
            stream: StreamId::hidden(1, 0),
            chunk_idx,
        }
    }

    fn tiered(capacity: u64) -> TieredStore<MemStore> {
        TieredStore::new(Arc::new(MemStore::new(2)), capacity)
    }

    #[test]
    fn reads_hit_dram_after_write_through() {
        let t = tiered(1024);
        t.write_chunk(key(0), &[1, 2, 3]).unwrap();
        assert_eq!(t.read_chunk(key(0)).unwrap(), vec![1, 2, 3]);
        assert_eq!(t.front_hits(), 1);
        assert_eq!(t.front_misses(), 0);
        // The backing store never saw the read.
        assert_eq!(t.back().stats().total_reads(), 0);
    }

    #[test]
    fn cold_reads_promote() {
        let t = tiered(100);
        // Fill with chunk 0, evict it with chunks 1..4, then re-read 0.
        for i in 0..4 {
            t.write_chunk(key(i), &[i as u8; 40]).unwrap();
        }
        assert!(t.front_used_bytes() <= 100);
        let _ = t.read_chunk(key(0)).unwrap();
        assert_eq!(t.front_misses(), 1);
        // Now hot.
        let _ = t.read_chunk(key(0)).unwrap();
        assert_eq!(t.front_hits(), 1);
    }

    #[test]
    fn capacity_is_respected_under_churn() {
        let t = tiered(128);
        for i in 0..50 {
            t.write_chunk(key(i), &[0u8; 32]).unwrap();
            assert!(t.front_used_bytes() <= 128);
        }
        // Everything still readable through the back.
        for i in 0..50 {
            assert_eq!(t.read_chunk(key(i)).unwrap().len(), 32);
        }
    }

    #[test]
    fn lru_keeps_recently_used_chunks() {
        let t = tiered(96); // three 32-byte chunks
        for i in 0..3 {
            t.write_chunk(key(i), &[i as u8; 32]).unwrap();
        }
        let _ = t.read_chunk(key(0)).unwrap(); // refresh 0
        t.write_chunk(key(3), &[3; 32]).unwrap(); // evicts 1 (LRU)
        let hits_before = t.front_hits();
        let _ = t.read_chunk(key(0)).unwrap();
        assert_eq!(t.front_hits(), hits_before + 1, "0 must still be hot");
        let misses_before = t.front_misses();
        let _ = t.read_chunk(key(1)).unwrap();
        assert_eq!(t.front_misses(), misses_before + 1, "1 must be cold");
    }

    #[test]
    fn oversized_chunk_bypasses_front() {
        let t = tiered(8);
        t.write_chunk(key(0), &[0u8; 64]).unwrap();
        assert_eq!(t.front_used_bytes(), 0);
        assert_eq!(t.read_chunk(key(0)).unwrap().len(), 64);
        assert_eq!(t.front_misses(), 1);
    }

    #[test]
    fn delete_purges_both_tiers() {
        let t = tiered(1024);
        t.write_chunk(key(0), &[1; 16]).unwrap();
        let freed = t.delete_stream(StreamId::hidden(1, 0));
        assert_eq!(freed, 16);
        assert_eq!(t.front_used_bytes(), 0);
        assert!(t.read_chunk(key(0)).is_err());
    }

    #[test]
    fn works_under_manager_and_two_stage_saver() {
        use crate::manager::StorageManager;
        use crate::two_stage::{SaveMode, StateSaver};
        let store = Arc::new(tiered(1 << 20));
        let mgr = Arc::new(StorageManager::new(store, 8));
        let saver = StateSaver::new(Arc::clone(&mgr), SaveMode::TwoStage);
        let row = vec![1.5f32; 8];
        for _ in 0..70 {
            saver.save_batch(&[(StreamId::hidden(3, 0), row.as_slice())]);
        }
        saver.barrier_and_flush(3);
        let back = mgr.read_rows(StreamId::hidden(3, 0), 0, 70).unwrap();
        assert_eq!(back.rows(), 70);
        assert_eq!(back.get(69, 0), 1.5);
        // Restoration read was a DRAM hit (just written through).
        assert!(mgr.store().front_hits() > 0);
    }
}
