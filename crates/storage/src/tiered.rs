//! Hierarchical (DRAM + SSD) chunk store.
//!
//! §4 of the paper: "Previous research has suggested using a hierarchical
//! storage backend that combines host DRAM and SSDs (AttentionStore). They
//! also integrate prefetching and caching strategies … orthogonal to our
//! work and can be incorporated to enhance performance further."
//!
//! [`TieredStore`] incorporates it: a byte-capacity DRAM front cache over a
//! capacity backing store, write-through on saves, promote-on-read with LRU
//! eviction. Hot contexts restore from DRAM at link speed; cold ones stream
//! from the backing SSDs.
//!
//! The front tier reports its movements to the capacity control plane:
//! * an optional **eviction callback** fires for every chunk the LRU pushes
//!   out under capacity pressure (the `hc-cachectl` controller and tests
//!   subscribe to it), and
//! * [`TieredStore::delete_stream`] purges the front tier too and accounts
//!   the released DRAM bytes ([`TieredStore::front_bytes_released`]), while
//!   its return value remains the *backing* bytes freed — the durable
//!   figure a quota tracker charges (the front copy is write-through
//!   shadow state, never additional durability).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{ChunkStore, StoreStats};
use crate::chunk::ChunkKey;
use crate::{StorageError, StreamId};

/// Callback invoked (outside the front-cache lock) for each chunk the LRU
/// evicts under capacity pressure: `(key, bytes)`.
pub type EvictListener = Arc<dyn Fn(ChunkKey, u64) + Send + Sync>;

struct FrontCache {
    chunks: HashMap<ChunkKey, (Vec<u8>, u64)>,
    used_bytes: u64,
    clock: u64,
}

impl FrontCache {
    fn touch_get(&mut self, key: &ChunkKey) -> Option<Vec<u8>> {
        self.clock += 1;
        let clock = self.clock;
        self.chunks.get_mut(key).map(|(data, stamp)| {
            *stamp = clock;
            data.clone()
        })
    }

    /// Inserts `data`, returning the chunks evicted to make room.
    fn insert(&mut self, key: ChunkKey, data: &[u8], capacity: u64) -> Vec<(ChunkKey, u64)> {
        if data.len() as u64 > capacity {
            return Vec::new();
        }
        self.clock += 1;
        if let Some((old, _)) = self.chunks.remove(&key) {
            self.used_bytes -= old.len() as u64;
        }
        let mut evicted = Vec::new();
        while self.used_bytes + data.len() as u64 > capacity && !self.chunks.is_empty() {
            let victim = *self
                .chunks
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k)
                // hc-analyze: allow(panic) invariant: the loop guard just checked !self.chunks.is_empty()
                .expect("non-empty");
            if let Some((old, _)) = self.chunks.remove(&victim) {
                self.used_bytes -= old.len() as u64;
                evicted.push((victim, old.len() as u64));
            }
        }
        self.used_bytes += data.len() as u64;
        self.chunks.insert(key, (data.to_vec(), self.clock));
        evicted
    }

    /// Removes every chunk of `stream`; returns DRAM bytes released.
    fn delete_stream(&mut self, stream: StreamId) -> u64 {
        let keys: Vec<ChunkKey> = self
            .chunks
            .keys()
            .filter(|k| k.stream == stream)
            .cloned()
            .collect();
        let mut freed = 0;
        for k in keys {
            if let Some((old, _)) = self.chunks.remove(&k) {
                self.used_bytes -= old.len() as u64;
                freed += old.len() as u64;
            }
        }
        freed
    }
}

/// DRAM-front / SSD-back hierarchical chunk store.
pub struct TieredStore<B: ChunkStore> {
    back: Arc<B>,
    front: Mutex<FrontCache>,
    front_capacity: u64,
    front_hits: AtomicU64,
    front_misses: AtomicU64,
    front_evictions: AtomicU64,
    front_released: AtomicU64,
    evict_listener: Mutex<Option<EvictListener>>,
}

impl<B: ChunkStore> TieredStore<B> {
    /// Wraps `back` with a DRAM cache of `front_capacity_bytes`.
    pub fn new(back: Arc<B>, front_capacity_bytes: u64) -> Self {
        Self {
            back,
            front: Mutex::new(FrontCache {
                chunks: HashMap::new(),
                used_bytes: 0,
                clock: 0,
            }),
            front_capacity: front_capacity_bytes,
            front_hits: AtomicU64::new(0),
            front_misses: AtomicU64::new(0),
            front_evictions: AtomicU64::new(0),
            front_released: AtomicU64::new(0),
            evict_listener: Mutex::new(None),
        }
    }

    /// Registers a callback fired for every chunk the front LRU evicts
    /// under capacity pressure (not for overwrites or stream deletes). The
    /// callback runs outside the cache lock, so it may query this store.
    pub fn set_evict_listener(&self, listener: impl Fn(ChunkKey, u64) + Send + Sync + 'static) {
        *self.evict_listener.lock() = Some(Arc::new(listener));
    }

    fn report_evictions(&self, evicted: Vec<(ChunkKey, u64)>) {
        if evicted.is_empty() {
            return;
        }
        self.front_evictions
            // hc-analyze: allow(relaxed) monotonic DRAM-tier metric; no reader pairs it with other state
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        // Clone the listener handle out of its lock before invoking it: a
        // callback that reads this store can trigger a promote-on-read
        // eviction, which re-enters here — holding the (non-reentrant)
        // listener mutex across the call would self-deadlock.
        let listener = self.evict_listener.lock().clone();
        if let Some(cb) = listener {
            for (key, bytes) in &evicted {
                cb(*key, *bytes);
            }
        }
    }

    /// Reads served from DRAM so far.
    pub fn front_hits(&self) -> u64 {
        // hc-analyze: allow(relaxed) monotonic DRAM-tier metric; no reader pairs it with other state
        self.front_hits.load(Ordering::Relaxed)
    }

    /// Reads that had to go to the backing store.
    pub fn front_misses(&self) -> u64 {
        // hc-analyze: allow(relaxed) monotonic DRAM-tier metric; no reader pairs it with other state
        self.front_misses.load(Ordering::Relaxed)
    }

    /// Chunks evicted from DRAM by capacity pressure so far.
    pub fn front_evictions(&self) -> u64 {
        // hc-analyze: allow(relaxed) monotonic DRAM-tier metric; no reader pairs it with other state
        self.front_evictions.load(Ordering::Relaxed)
    }

    /// DRAM bytes released by `delete_stream` purges so far.
    pub fn front_bytes_released(&self) -> u64 {
        // hc-analyze: allow(relaxed) monotonic DRAM-tier metric; no reader pairs it with other state
        self.front_released.load(Ordering::Relaxed)
    }

    /// Bytes currently cached in DRAM.
    pub fn front_used_bytes(&self) -> u64 {
        self.front.lock().used_bytes
    }

    /// Backing store handle.
    pub fn back(&self) -> &Arc<B> {
        &self.back
    }
}

impl<B: ChunkStore> ChunkStore for TieredStore<B> {
    fn write_chunk(&self, key: ChunkKey, data: &[u8]) -> Result<(), StorageError> {
        // Write-through: durability lives in the backing store; the front
        // keeps the hot copy.
        self.back.write_chunk(key, data)?;
        let evicted = self.front.lock().insert(key, data, self.front_capacity);
        self.report_evictions(evicted);
        Ok(())
    }

    fn read_chunk(&self, key: ChunkKey) -> Result<Vec<u8>, StorageError> {
        if let Some(data) = self.front.lock().touch_get(&key) {
            // hc-analyze: allow(relaxed) monotonic DRAM-tier metric; no reader pairs it with other state
            self.front_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(data);
        }
        let data = self.back.read_chunk(key)?;
        // hc-analyze: allow(relaxed) monotonic DRAM-tier metric; no reader pairs it with other state
        self.front_misses.fetch_add(1, Ordering::Relaxed);
        // Promote on read.
        let evicted = self.front.lock().insert(key, &data, self.front_capacity);
        self.report_evictions(evicted);
        Ok(data)
    }

    fn contains(&self, key: ChunkKey) -> bool {
        self.back.contains(key)
    }

    fn chunk_in_fast_tier(&self, key: ChunkKey) -> bool {
        // Read-only peek: no LRU touch, so probing for the fanout decision
        // never perturbs eviction order.
        self.front.lock().chunks.contains_key(&key)
    }

    fn delete_stream(&self, stream: StreamId) -> u64 {
        let front_freed = self.front.lock().delete_stream(stream);
        self.front_released
            // hc-analyze: allow(relaxed) monotonic DRAM-tier metric; no reader pairs it with other state
            .fetch_add(front_freed, Ordering::Relaxed);
        // The durable figure: what the quota tracker charged for this
        // stream lives in the backing store; the DRAM copy was a shadow.
        self.back.delete_stream(stream)
    }

    fn delete_chunk(&self, key: ChunkKey) -> u64 {
        // Purge the DRAM shadow too, so a recovery sweep cannot leave a
        // stale front copy serving a deleted chunk.
        {
            let mut front = self.front.lock();
            if let Some((old, _)) = front.chunks.remove(&key) {
                front.used_bytes -= old.len() as u64;
            }
        }
        self.back.delete_chunk(key)
    }

    fn chunk_keys(&self) -> Vec<ChunkKey> {
        self.back.chunk_keys()
    }

    fn warm_chunk(&self, key: ChunkKey, data: &[u8]) -> u64 {
        // Recovery re-warm: admit through the normal policy (LRU order =
        // replay order, oversize chunks bypass), no backing-store IO.
        // Reports the bytes the front holds for `key` afterwards, so the
        // recovery tally counts chunks a validation read already
        // promoted.
        let (resident, evicted) = {
            let mut front = self.front.lock();
            let evicted = front.insert(key, data, self.front_capacity);
            (front.chunks.contains_key(&key), evicted)
        };
        self.report_evictions(evicted);
        if resident {
            data.len() as u64
        } else {
            0
        }
    }

    fn n_devices(&self) -> usize {
        self.back.n_devices()
    }

    fn stats(&self) -> StoreStats {
        self.back.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStore;

    fn key(chunk_idx: u32) -> ChunkKey {
        ChunkKey {
            stream: StreamId::hidden(1, 0),
            chunk_idx,
        }
    }

    fn tiered(capacity: u64) -> TieredStore<MemStore> {
        TieredStore::new(Arc::new(MemStore::new(2)), capacity)
    }

    #[test]
    fn reads_hit_dram_after_write_through() {
        let t = tiered(1024);
        t.write_chunk(key(0), &[1, 2, 3]).unwrap();
        assert_eq!(t.read_chunk(key(0)).unwrap(), vec![1, 2, 3]);
        assert_eq!(t.front_hits(), 1);
        assert_eq!(t.front_misses(), 0);
        // The backing store never saw the read.
        assert_eq!(t.back().stats().total_reads(), 0);
    }

    #[test]
    fn cold_reads_promote() {
        let t = tiered(100);
        // Fill with chunk 0, evict it with chunks 1..4, then re-read 0.
        for i in 0..4 {
            t.write_chunk(key(i), &[i as u8; 40]).unwrap();
        }
        assert!(t.front_used_bytes() <= 100);
        let _ = t.read_chunk(key(0)).unwrap();
        assert_eq!(t.front_misses(), 1);
        // Now hot.
        let _ = t.read_chunk(key(0)).unwrap();
        assert_eq!(t.front_hits(), 1);
    }

    #[test]
    fn capacity_is_respected_under_churn() {
        let t = tiered(128);
        for i in 0..50 {
            t.write_chunk(key(i), &[0u8; 32]).unwrap();
            assert!(t.front_used_bytes() <= 128);
        }
        // Everything still readable through the back.
        for i in 0..50 {
            assert_eq!(t.read_chunk(key(i)).unwrap().len(), 32);
        }
    }

    #[test]
    fn lru_keeps_recently_used_chunks() {
        let t = tiered(96); // three 32-byte chunks
        for i in 0..3 {
            t.write_chunk(key(i), &[i as u8; 32]).unwrap();
        }
        let _ = t.read_chunk(key(0)).unwrap(); // refresh 0
        t.write_chunk(key(3), &[3; 32]).unwrap(); // evicts 1 (LRU)
        let hits_before = t.front_hits();
        let _ = t.read_chunk(key(0)).unwrap();
        assert_eq!(t.front_hits(), hits_before + 1, "0 must still be hot");
        let misses_before = t.front_misses();
        let _ = t.read_chunk(key(1)).unwrap();
        assert_eq!(t.front_misses(), misses_before + 1, "1 must be cold");
    }

    #[test]
    fn oversized_chunk_bypasses_front() {
        let t = tiered(8);
        t.write_chunk(key(0), &[0u8; 64]).unwrap();
        assert_eq!(t.front_used_bytes(), 0);
        assert_eq!(t.read_chunk(key(0)).unwrap().len(), 64);
        assert_eq!(t.front_misses(), 1);
    }

    #[test]
    fn fast_tier_flag_tracks_front_residency_without_lru_touch() {
        let t = tiered(64); // two 32-byte chunks
        t.write_chunk(key(0), &[0u8; 32]).unwrap();
        t.write_chunk(key(1), &[1u8; 32]).unwrap();
        assert!(t.chunk_in_fast_tier(key(0)));
        assert!(t.chunk_in_fast_tier(key(1)));
        assert!(!t.chunk_in_fast_tier(key(2)));
        // Probing chunk 0 many times must not refresh it: the next write
        // still evicts it as the LRU victim.
        for _ in 0..10 {
            assert!(t.chunk_in_fast_tier(key(0)));
        }
        t.write_chunk(key(2), &[2u8; 32]).unwrap();
        assert!(!t.chunk_in_fast_tier(key(0)), "probe must not touch LRU");
        assert!(t.chunk_in_fast_tier(key(1)));
        assert!(t.chunk_in_fast_tier(key(2)));
    }

    #[test]
    fn warm_chunk_admits_through_policy_without_back_io() {
        let t = tiered(64); // two 32-byte chunks
        assert_eq!(t.warm_chunk(key(0), &[0u8; 32]), 32);
        assert_eq!(t.warm_chunk(key(1), &[1u8; 32]), 32);
        assert!(t.chunk_in_fast_tier(key(0)) && t.chunk_in_fast_tier(key(1)));
        // Re-warming an already-hot chunk reports it still resident.
        assert_eq!(t.warm_chunk(key(0), &[0u8; 32]), 32);
        // Oversize bypasses the front, exactly like write-through.
        assert_eq!(t.warm_chunk(key(3), &[9u8; 65]), 0);
        assert!(!t.chunk_in_fast_tier(key(3)));
        // Capacity pressure still evicts: warming a third chunk pushes
        // out the LRU (chunk 1 — chunk 0 was re-warmed later).
        assert_eq!(t.warm_chunk(key(4), &[4u8; 32]), 32);
        assert!(!t.chunk_in_fast_tier(key(1)));
        // Warming is a DRAM-only movement: the backing store saw no IO.
        assert_eq!(t.back().stats().total_reads(), 0);
        assert_eq!(t.back().stats().total_writes(), 0);
    }

    #[test]
    fn delete_purges_both_tiers() {
        let t = tiered(1024);
        t.write_chunk(key(0), &[1; 16]).unwrap();
        let freed = t.delete_stream(StreamId::hidden(1, 0));
        assert_eq!(freed, 16, "returned figure is the durable (back) bytes");
        assert_eq!(t.front_bytes_released(), 16, "DRAM copy released too");
        assert_eq!(t.front_used_bytes(), 0);
        assert!(t.read_chunk(key(0)).is_err());
    }

    #[test]
    fn evict_listener_sees_capacity_evictions_only() {
        let t = Arc::new(tiered(64)); // two 32-byte chunks
        let evicted: Arc<Mutex<Vec<(ChunkKey, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&evicted);
        t.set_evict_listener(move |k, b| sink.lock().push((k, b)));
        t.write_chunk(key(0), &[0u8; 32]).unwrap();
        t.write_chunk(key(1), &[1u8; 32]).unwrap();
        assert!(evicted.lock().is_empty(), "no pressure yet");
        // Overwrite is replacement, not eviction.
        t.write_chunk(key(1), &[9u8; 32]).unwrap();
        assert!(evicted.lock().is_empty());
        // Third chunk evicts the LRU (chunk 0).
        t.write_chunk(key(2), &[2u8; 32]).unwrap();
        assert_eq!(evicted.lock().as_slice(), &[(key(0), 32)]);
        assert_eq!(t.front_evictions(), 1);
        // Stream deletes do not fire the listener.
        t.delete_stream(StreamId::hidden(1, 0));
        assert_eq!(evicted.lock().len(), 1);
    }

    #[test]
    fn evict_listener_may_reenter_the_store() {
        // A listener that reads through the store can trigger a
        // promote-on-read eviction and re-enter the reporting path; this
        // must not deadlock on the listener mutex.
        let t = Arc::new(tiered(64)); // two 32-byte chunks
        t.write_chunk(key(0), &[0u8; 32]).unwrap();
        t.write_chunk(key(1), &[1u8; 32]).unwrap();
        let store = Arc::clone(&t);
        t.set_evict_listener(move |_, _| {
            let _ = store.read_chunk(key(0));
        });
        // Evicts chunk 0 → listener promotes it back → evicts chunk 1 →
        // listener reads chunk 0 again (front hit) → terminates.
        t.write_chunk(key(2), &[2u8; 32]).unwrap();
        assert!(t.front_evictions() >= 2);
        assert_eq!(t.read_chunk(key(0)).unwrap(), vec![0u8; 32]);
    }

    #[test]
    fn used_bytes_accounting_under_interleaved_append_read_delete() {
        // Drive the tier through a manager so chunked appends, tail
        // rewrites, restoration reads and deletes all interleave, and check
        // the DRAM accounting at every step.
        use crate::manager::StorageManager;
        let store = Arc::new(tiered(100 * 16 * 2)); // room for ~100 rows at D=16
        let mgr = StorageManager::new(Arc::clone(&store), 16);
        let row = |v: f32| vec![v; 16];
        let mk_rows = |n: usize, v: f32| hc_tensor::Tensor2::from_fn(n, 16, |_, _| v);
        let s1 = StreamId::hidden(1, 0);
        let s2 = StreamId::hidden(2, 0);
        mgr.append_rows(s1, &mk_rows(64, 1.0)).unwrap();
        assert_eq!(store.front_used_bytes(), 64 * 16 * 2);
        mgr.append_row(s2, &row(2.0)).unwrap();
        mgr.flush_stream(s2).unwrap();
        assert_eq!(store.front_used_bytes(), 64 * 16 * 2 + 16 * 2);
        // Reads of cached chunks do not change occupancy.
        let before = store.front_used_bytes();
        let _ = mgr.read_rows(s1, 0, 64).unwrap();
        assert_eq!(store.front_used_bytes(), before);
        assert!(store.front_hits() > 0);
        // Growing the s2 tail rewrites its front chunk in place.
        mgr.append_row(s2, &row(3.0)).unwrap();
        mgr.flush_stream(s2).unwrap();
        assert_eq!(store.front_used_bytes(), 64 * 16 * 2 + 2 * 16 * 2);
        // Deleting session 1 releases exactly its DRAM bytes.
        let freed = mgr.delete_session(1);
        assert_eq!(freed, 64 * 16 * 2);
        assert_eq!(store.front_used_bytes(), 2 * 16 * 2);
        assert_eq!(store.front_bytes_released(), 64 * 16 * 2);
        // Every read so far was a DRAM hit (all chunks written through).
        assert_eq!(store.front_misses(), 0);
        // Session 2 data still correct after all the churn.
        let back = mgr.read_rows(s2, 0, 2).unwrap();
        assert_eq!(back.get(1, 0), 3.0);
        mgr.delete_session(2);
        assert_eq!(store.front_used_bytes(), 0);
    }

    #[test]
    fn works_under_manager_and_two_stage_saver() {
        use crate::manager::StorageManager;
        use crate::two_stage::{SaveMode, StateSaver};
        let store = Arc::new(tiered(1 << 20));
        let mgr = Arc::new(StorageManager::new(store, 8));
        let saver = StateSaver::new(Arc::clone(&mgr), SaveMode::TwoStage);
        let row = vec![1.5f32; 8];
        for _ in 0..70 {
            saver
                .save_batch(&[(StreamId::hidden(3, 0), row.as_slice())])
                .unwrap();
        }
        saver.barrier_and_flush(3).unwrap();
        let back = mgr.read_rows(StreamId::hidden(3, 0), 0, 70).unwrap();
        assert_eq!(back.rows(), 70);
        assert_eq!(back.get(69, 0), 1.5);
        // Restoration read was a DRAM hit (just written through).
        assert!(mgr.store().front_hits() > 0);
    }
}
