//! Two-stage state saving (§4.2.2).
//!
//! During decode, every layer of every iteration produces one hidden-state
//! row per sequence. Writing those rows straight to storage means many
//! small scattered writes on the critical path (the paper's DirectIO
//! baseline, Fig 14). Instead:
//!
//! * **Stage 1 — snapshot**: the batch's rows are copied to host memory in
//!   one contiguous copy (`cudaMemcpy` in the paper; a memcpy into the
//!   daemon's queue here). The GPU-side buffer is immediately reusable.
//! * **Stage 2 — chunk daemon**: a background host thread demultiplexes the
//!   rows into per-stream chunk buffers and flushes full 64-token chunks to
//!   the backend (the manager's append path implements the buffering).
//!
//! The saver also implements the `DirectIo` mode used as the ablation
//! baseline: rows go to the backend synchronously, flushing the tail chunk
//! on every call — the scattered-write pattern the backend statistics make
//! visible.
//!
//! The daemon's chunk encoding runs under the [`StorageManager`]'s
//! `ParallelConfig` (set via `StorageManager::with_parallel`), so the save
//! path and the restore prefetcher draw from one shared thread budget.
//!
//! The daemon is one *appender* among the manager's concurrent clients: it
//! holds only the written stream's write lock per append (the manager is
//! sharded), so a save burst never stalls the restore pipelines reading
//! other streams — and concurrent readers of the *same* stream see clean
//! snapshot prefixes, never torn rows.
//!
//! Shutdown: dropping the saver closes the channel and **joins** the daemon
//! thread, so every batch submitted before the drop is demultiplexed into
//! the manager (full chunks durable, tails buffered) before `drop` returns
//! — nothing is detached or leaked.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use crate::backend::ChunkStore;
use crate::manager::StorageManager;
use crate::{StorageError, StreamId};

/// Saving strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveMode {
    /// Snapshot + background chunk daemon (the paper's design).
    TwoStage,
    /// Synchronous write-through (ablation baseline of Fig 14).
    DirectIo,
}

/// A batch of rows for one stream, already snapshotted to host memory.
struct RowBatch {
    stream: StreamId,
    /// Row-major f32 payload (`n_rows × d_model`).
    rows: Vec<f32>,
    n_rows: usize,
}

enum Msg {
    Batch(Vec<RowBatch>),
    Barrier(Sender<()>),
}

/// Saver front end. One instance per serving engine.
pub struct StateSaver<S: ChunkStore + 'static> {
    mgr: Arc<StorageManager<S>>,
    mode: SaveMode,
    tx: Option<Sender<Msg>>,
    daemon: Option<JoinHandle<()>>,
    /// Stage-1 bytes snapshotted (PCIe downstream traffic in the paper).
    snapshot_bytes: Arc<AtomicU64>,
    /// First append error the chunk daemon hit before it shut itself
    /// down; surfaced (typed) by the next `save_batch`/`barrier`.
    daemon_err: Arc<Mutex<Option<StorageError>>>,
}

impl<S: ChunkStore + 'static> StateSaver<S> {
    /// Creates a saver; `TwoStage` mode spawns the chunk daemon thread.
    pub fn new(mgr: Arc<StorageManager<S>>, mode: SaveMode) -> Self {
        let snapshot_bytes = Arc::new(AtomicU64::new(0));
        let daemon_err: Arc<Mutex<Option<StorageError>>> = Arc::new(Mutex::new(None));
        let (tx, daemon) = match mode {
            SaveMode::DirectIo => (None, None),
            SaveMode::TwoStage => {
                let (tx, rx) = unbounded::<Msg>();
                let mgr2 = Arc::clone(&mgr);
                let err2 = Arc::clone(&daemon_err);
                let handle = std::thread::Builder::new()
                    .name("hcache-chunk-daemon".into())
                    .spawn(move || {
                        // The daemon preserves per-stream append order
                        // because it is the sole consumer of the channel.
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                Msg::Batch(batches) => {
                                    for b in batches {
                                        let t = hc_tensor::Tensor2::from_vec(
                                            b.n_rows,
                                            mgr2.d_model(),
                                            b.rows,
                                        );
                                        if let Err(e) = mgr2.append_rows(b.stream, &t) {
                                            // Park the error and stop
                                            // consuming: dropping rx turns
                                            // every later send into a
                                            // typed failure at the caller.
                                            *err2.lock() = Some(e);
                                            return;
                                        }
                                    }
                                }
                                Msg::Barrier(ack) => {
                                    let _ = ack.send(());
                                }
                            }
                        }
                    })
                    // hc-analyze: allow(panic) thread-spawn failure at construction is a host misconfiguration; no caller handles a saver without its daemon
                    .expect("failed to spawn chunk daemon");
                (Some(tx), Some(handle))
            }
        };
        Self {
            mgr,
            mode,
            tx,
            daemon,
            snapshot_bytes,
            daemon_err,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> SaveMode {
        self.mode
    }

    /// Stage-1 snapshot traffic so far, in bytes (f16 equivalent).
    pub fn snapshot_bytes(&self) -> u64 {
        // hc-analyze: allow(relaxed) monotonic stage-1 traffic metric; no reader pairs it with other state
        self.snapshot_bytes.load(Ordering::Relaxed)
    }

    /// The daemon's parked failure, or a generic disconnect error.
    fn daemon_failure(&self) -> StorageError {
        self.daemon_err
            .lock()
            .clone()
            .unwrap_or_else(|| StorageError::Io("chunk daemon disconnected".to_string()))
    }

    /// Saves a batch of rows: `items` is a list of `(stream, rows)` where
    /// each `rows` holds `n × d_model` f32 values for that stream.
    ///
    /// In `TwoStage` mode this returns as soon as the snapshot copy is done;
    /// in `DirectIo` mode it blocks until the rows (including the partial
    /// tail chunk) hit the backend.
    ///
    /// A dead chunk daemon (it shuts itself down on its first append
    /// error) surfaces here as the parked typed error, not an abort.
    pub fn save_batch(&self, items: &[(StreamId, &[f32])]) -> Result<(), StorageError> {
        let d = self.mgr.d_model();
        let mut bytes = 0u64;
        match self.mode {
            SaveMode::TwoStage => {
                let mut batches = Vec::with_capacity(items.len());
                for (stream, rows) in items {
                    assert_eq!(rows.len() % d, 0, "ragged row payload");
                    bytes += (rows.len() * 2) as u64; // f16 on the wire
                    batches.push(RowBatch {
                        stream: *stream,
                        rows: rows.to_vec(), // the stage-1 snapshot copy
                        n_rows: rows.len() / d,
                    });
                }
                // hc-analyze: allow(relaxed) monotonic stage-1 traffic metric; no reader pairs it with other state
                self.snapshot_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.tx
                    .as_ref()
                    // hc-analyze: allow(panic) mode invariant: TwoStage construction always installs tx
                    .expect("two-stage saver has a daemon")
                    .send(Msg::Batch(batches))
                    .map_err(|_| self.daemon_failure())?;
            }
            SaveMode::DirectIo => {
                for (stream, rows) in items {
                    assert_eq!(rows.len() % d, 0, "ragged row payload");
                    let t = hc_tensor::Tensor2::from_vec(rows.len() / d, d, rows.to_vec());
                    self.mgr.append_rows(*stream, &t)?;
                    // Write-through: the tail chunk goes out on every call —
                    // this is what makes DirectIO scatter small writes.
                    self.mgr.flush_stream(*stream)?;
                }
            }
        }
        Ok(())
    }

    /// Waits until the daemon has drained everything submitted so far, then
    /// flushes all partial chunks of `session` so reads see durable data.
    ///
    /// Like [`Self::save_batch`], a dead daemon surfaces as its parked
    /// typed error.
    pub fn barrier_and_flush(&self, session: u64) -> Result<(), StorageError> {
        if let Some(tx) = &self.tx {
            let (ack_tx, ack_rx) = unbounded();
            tx.send(Msg::Barrier(ack_tx))
                .map_err(|_| self.daemon_failure())?;
            ack_rx.recv().map_err(|_| self.daemon_failure())?;
        }
        self.mgr.flush_session(session)
    }
}

impl<S: ChunkStore + 'static> Drop for StateSaver<S> {
    fn drop(&mut self) {
        // Close the channel, then join the daemon so no appends are lost.
        self.tx.take();
        if let Some(h) = self.daemon.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStore;
    use hc_tensor::Tensor2;

    const D: usize = 8;

    fn setup(mode: SaveMode) -> (Arc<StorageManager<MemStore>>, StateSaver<MemStore>) {
        let mgr = Arc::new(StorageManager::new(Arc::new(MemStore::new(4)), D));
        let saver = StateSaver::new(Arc::clone(&mgr), mode);
        (mgr, saver)
    }

    fn row(v: f32) -> Vec<f32> {
        vec![v; D]
    }

    #[test]
    fn two_stage_and_direct_store_identical_data() {
        let (mgr_a, saver_a) = setup(SaveMode::TwoStage);
        let (mgr_b, saver_b) = setup(SaveMode::DirectIo);
        for step in 0..100 {
            for layer in 0..4u32 {
                let r = row(step as f32 + layer as f32 * 0.25);
                let items = [(StreamId::hidden(1, layer), r.as_slice())];
                saver_a.save_batch(&items).unwrap();
                saver_b.save_batch(&items).unwrap();
            }
        }
        saver_a.barrier_and_flush(1).unwrap();
        saver_b.barrier_and_flush(1).unwrap();
        for layer in 0..4u32 {
            let s = StreamId::hidden(1, layer);
            assert_eq!(mgr_a.n_tokens(s), 100);
            let a = mgr_a.read_rows(s, 0, 100).unwrap();
            let b = mgr_b.read_rows(s, 0, 100).unwrap();
            assert_eq!(a, b, "layer {layer} diverged");
        }
    }

    #[test]
    fn two_stage_batches_writes_direct_io_scatters() {
        let (mgr_a, saver_a) = setup(SaveMode::TwoStage);
        let (mgr_b, saver_b) = setup(SaveMode::DirectIo);
        // 128 decode steps over one stream: exactly 2 full chunks.
        for step in 0..128 {
            let r = row(step as f32);
            saver_a
                .save_batch(&[(StreamId::hidden(1, 0), r.as_slice())])
                .unwrap();
            saver_b
                .save_batch(&[(StreamId::hidden(1, 0), r.as_slice())])
                .unwrap();
        }
        saver_a.barrier_and_flush(1).unwrap();
        saver_b.barrier_and_flush(1).unwrap();
        let w_two_stage = mgr_a.stats().total_writes();
        let w_direct = mgr_b.stats().total_writes();
        assert!(
            w_two_stage <= 3,
            "two-stage should write ~2 chunk IOs, got {w_two_stage}"
        );
        assert!(
            w_direct >= 128,
            "direct IO should write per token, got {w_direct}"
        );
    }

    #[test]
    fn snapshot_counts_stage1_traffic() {
        let (_mgr, saver) = setup(SaveMode::TwoStage);
        let r = row(1.0);
        saver
            .save_batch(&[(StreamId::hidden(1, 0), r.as_slice())])
            .unwrap();
        assert_eq!(saver.snapshot_bytes(), (D * 2) as u64);
        // DirectIO performs no snapshot.
        let (_m2, direct) = setup(SaveMode::DirectIo);
        direct
            .save_batch(&[(StreamId::hidden(1, 0), r.as_slice())])
            .unwrap();
        assert_eq!(direct.snapshot_bytes(), 0);
    }

    #[test]
    fn multi_sequence_batches_demultiplex_into_streams() {
        let (mgr, saver) = setup(SaveMode::TwoStage);
        // Continuous batching: one call carries rows of several sessions.
        let r1 = row(1.0);
        let r2 = row(2.0);
        saver
            .save_batch(&[
                (StreamId::hidden(1, 0), r1.as_slice()),
                (StreamId::hidden(2, 0), r2.as_slice()),
            ])
            .unwrap();
        saver.barrier_and_flush(1).unwrap();
        saver.barrier_and_flush(2).unwrap();
        assert_eq!(mgr.n_tokens(StreamId::hidden(1, 0)), 1);
        assert_eq!(mgr.n_tokens(StreamId::hidden(2, 0)), 1);
        let a = mgr.read_rows(StreamId::hidden(1, 0), 0, 1).unwrap();
        assert_eq!(a.get(0, 0), 1.0);
    }

    #[test]
    fn barrier_makes_pending_rows_readable() {
        let (mgr, saver) = setup(SaveMode::TwoStage);
        for i in 0..10 {
            let r = row(i as f32);
            saver
                .save_batch(&[(StreamId::hidden(5, 0), r.as_slice())])
                .unwrap();
        }
        saver.barrier_and_flush(5).unwrap();
        let t = mgr.read_rows(StreamId::hidden(5, 0), 0, 10).unwrap();
        assert_eq!(t.rows(), 10);
        assert_eq!(t.get(9, 0), 9.0);
    }

    #[test]
    fn drop_joins_daemon_without_losing_data() {
        let mgr = Arc::new(StorageManager::new(Arc::new(MemStore::new(2)), D));
        {
            let saver = StateSaver::new(Arc::clone(&mgr), SaveMode::TwoStage);
            for i in 0..64 {
                let r = row(i as f32);
                saver
                    .save_batch(&[(StreamId::hidden(9, 0), r.as_slice())])
                    .unwrap();
            }
            // No barrier: Drop must still drain the queue.
        }
        assert_eq!(mgr.n_tokens(StreamId::hidden(9, 0)), 64);
    }

    #[test]
    fn drop_mid_stream_loses_no_flushed_chunks() {
        // Regression for the daemon shutdown path: drop the saver while the
        // queue still holds a mix of chunk-crossing batches for several
        // streams — every row must survive, full chunks as durable backend
        // writes and the tails via the manager's partial buffers.
        let mgr = Arc::new(StorageManager::new(Arc::new(MemStore::new(3)), D));
        {
            let saver = StateSaver::new(Arc::clone(&mgr), SaveMode::TwoStage);
            for i in 0..100 {
                for layer in 0..2u32 {
                    let r = row(i as f32 + layer as f32 * 0.5);
                    saver
                        .save_batch(&[(StreamId::hidden(4, layer), r.as_slice())])
                        .unwrap();
                }
            }
            // No barrier: Drop closes the channel and joins the daemon.
        }
        // 100 rows = 1 durable chunk (64) + 36 buffered, per stream.
        assert!(
            mgr.stats().total_writes() >= 2,
            "full chunks must have been flushed by the daemon before drop"
        );
        for layer in 0..2u32 {
            let s = StreamId::hidden(4, layer);
            assert_eq!(mgr.n_tokens(s), 100, "layer {layer} lost rows");
            let t = mgr.read_rows(s, 0, 100).unwrap();
            for i in 0..100 {
                assert_eq!(
                    t.get(i, 0),
                    hc_tensor::f16::f16_roundtrip(i as f32 + layer as f32 * 0.5),
                    "layer {layer} row {i} corrupted"
                );
            }
        }
    }

    #[test]
    fn multilayer_batch_preserves_tensor_content() {
        let (mgr, saver) = setup(SaveMode::TwoStage);
        let t = Tensor2::from_fn(3, D, |r, c| (r * D + c) as f32 * 0.5);
        saver
            .save_batch(&[(StreamId::hidden(1, 7), t.as_slice())])
            .unwrap();
        saver.barrier_and_flush(1).unwrap();
        let back = mgr.read_rows(StreamId::hidden(1, 7), 0, 3).unwrap();
        assert_eq!(back.get(2, 3), hc_tensor::f16::f16_roundtrip(t.get(2, 3)));
    }
}
