//! IEEE-754 binary16 (half precision) codec.
//!
//! The paper stores hidden states and KV cache in fp16 (2 bytes/element);
//! storage sizes and IO volumes in every experiment derive from that. The
//! storage crate serializes activations through this codec so that on-disk
//! bytes are faithful to the paper's state sizes, and so that tests can
//! quantify the (tiny) fp16 round-trip error separately from algorithmic
//! error.
//!
//! Implemented from the bit layout directly — no external `half` dependency.

/// Converts an `f32` to its nearest binary16 bit pattern (round-to-nearest-
/// even), with overflow mapping to infinity.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf or NaN.
        let mant16 = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | mant16;
    }

    // Re-bias exponent from f32 (127) to f16 (15).
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7c00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal f16. Keep 10 mantissa bits, round to nearest even on the
        // remaining 13.
        let exp16 = (unbiased + 15) as u32;
        let mant16 = mant >> 13;
        let round_bits = mant & 0x1fff;
        let mut out = ((exp16 << 10) | mant16) as u16;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (mant16 & 1) == 1) {
            out += 1; // may carry into exponent, which is still correct
        }
        return sign | out;
    }
    if unbiased >= -25 {
        // Subnormal f16.
        let full_mant = mant | 0x0080_0000; // implicit leading 1
        let shift = (-14 - unbiased + 13) as u32;
        let mant16 = full_mant >> shift;
        let rem = full_mant & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut out = mant16 as u16;
        if rem > half || (rem == half && (mant16 & 1) == 1) {
            out += 1;
        }
        return sign | out;
    }
    sign // underflow -> signed zero
}

/// Converts a binary16 bit pattern to `f32` exactly.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;

    let bits = if exp == 0 {
        if mant == 0 {
            sign // signed zero
        } else {
            // Subnormal: normalize into f32.
            let mut m = mant;
            let mut e = -14i32;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03ff;
            sign | (((e + 127) as u32) << 23) | (m << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13) // inf / NaN
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Quantizes through f16 and back — the value a stored activation will have
/// after a save/restore round trip.
#[inline]
pub fn f16_roundtrip(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Encodes a slice of f32 into little-endian f16 bytes (2 bytes/element).
pub fn encode_f16(xs: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 2);
    for &x in xs {
        out.extend_from_slice(&f32_to_f16_bits(x).to_le_bytes());
    }
    out
}

/// Decodes little-endian f16 bytes back into f32.
///
/// # Panics
/// Panics if `bytes.len()` is odd.
pub fn decode_f16(bytes: &[u8]) -> Vec<f32> {
    assert!(
        bytes.len().is_multiple_of(2),
        "f16 byte stream must have even length"
    );
    bytes
        .chunks_exact(2)
        .map(|c| f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
        .collect()
}

/// [`encode_f16`] with elements converted in parallel under `par`'s thread
/// budget. Conversion is element-wise, so the output is byte-identical to
/// the serial encoder for every thread count.
pub fn encode_f16_par(xs: &[f32], par: &crate::ParallelConfig) -> Vec<u8> {
    if par.is_serial() {
        return encode_f16(xs);
    }
    let mut out = vec![0u8; xs.len() * BYTES_PER_ELEM];
    par.run_row_blocks(&mut out, xs.len(), BYTES_PER_ELEM, |e0, chunk| {
        for (x, b) in xs[e0..].iter().zip(chunk.chunks_exact_mut(BYTES_PER_ELEM)) {
            b.copy_from_slice(&f32_to_f16_bits(*x).to_le_bytes());
        }
    });
    out
}

/// [`decode_f16`] with elements converted in parallel under `par`'s thread
/// budget. Byte-identical to the serial decoder for every thread count.
///
/// # Panics
/// Panics if `bytes.len()` is odd.
pub fn decode_f16_par(bytes: &[u8], par: &crate::ParallelConfig) -> Vec<f32> {
    if par.is_serial() {
        return decode_f16(bytes);
    }
    assert!(
        bytes.len().is_multiple_of(2),
        "f16 byte stream must have even length"
    );
    let n = bytes.len() / BYTES_PER_ELEM;
    let mut out = vec![0.0_f32; n];
    par.run_row_blocks(&mut out, n, 1, |e0, chunk| {
        let src = &bytes[e0 * BYTES_PER_ELEM..];
        for (dst, c) in chunk.iter_mut().zip(src.chunks_exact(BYTES_PER_ELEM)) {
            *dst = f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]]));
        }
    });
    out
}

/// Bytes needed to store `n` f16 elements.
pub const BYTES_PER_ELEM: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(f16_roundtrip(x), x, "integer {i} should be exact in f16");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // f16::MAX
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(1e10), 0x7c00); // overflow
    }

    #[test]
    fn nan_stays_nan() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn subnormals_roundtrip() {
        let tiny = 5.96e-8_f32; // smallest positive f16 subnormal ~ 2^-24
        let rt = f16_roundtrip(tiny);
        assert!(rt > 0.0 && (rt - tiny).abs() / tiny < 0.5);
        // Deep underflow flushes to zero.
        assert_eq!(f16_roundtrip(1e-30), 0.0);
    }

    #[test]
    fn encode_decode_roundtrip_bytes() {
        let xs = vec![0.5, -1.25, 3.0, 100.0, -0.0078125];
        let bytes = encode_f16(&xs);
        assert_eq!(bytes.len(), xs.len() * BYTES_PER_ELEM);
        let back = decode_f16(&bytes);
        for (a, b) in xs.iter().zip(back.iter()) {
            assert_eq!(f16_roundtrip(*a), *b);
        }
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn decode_rejects_odd_length() {
        let _ = decode_f16(&[1, 2, 3]);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between two f16 values around 1.0;
        // round-to-even keeps the even mantissa (1.0).
        let halfway = 1.0 + 2f32.powi(-11);
        assert_eq!(f16_roundtrip(halfway), 1.0);
        // Slightly above the halfway point must round up.
        let above = 1.0 + 2f32.powi(-11) + 2f32.powi(-13);
        assert_eq!(f16_roundtrip(above), 1.0 + 2f32.powi(-10));
    }

    #[test]
    fn parallel_codec_is_byte_identical_across_thread_counts() {
        let xs: Vec<f32> = (0..1000)
            .map(|i| (i as f32 - 500.0) * 0.37 + 1.0 / (i + 1) as f32)
            .collect();
        let serial_bytes = encode_f16(&xs);
        let serial_back = decode_f16(&serial_bytes);
        for threads in 1..=8 {
            let par = crate::ParallelConfig::new(threads);
            assert_eq!(encode_f16_par(&xs, &par), serial_bytes, "{threads} threads");
            assert_eq!(
                decode_f16_par(&serial_bytes, &par),
                serial_back,
                "{threads} threads"
            );
        }
    }

    proptest! {
        #[test]
        fn roundtrip_relative_error_bounded(x in -60000.0f32..60000.0) {
            let rt = f16_roundtrip(x);
            if x.abs() > 1e-4 {
                // f16 has 11 significand bits -> rel err <= 2^-11.
                prop_assert!(((rt - x) / x).abs() <= 4.9e-4, "x={x} rt={rt}");
            }
        }

        #[test]
        fn roundtrip_is_idempotent(x in -60000.0f32..60000.0) {
            let once = f16_roundtrip(x);
            let twice = f16_roundtrip(once);
            prop_assert_eq!(once.to_bits(), twice.to_bits());
        }

        #[test]
        fn encode_preserves_order_after_decode(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
            // f16 rounding is monotone.
            let (x, y) = (f16_roundtrip(a), f16_roundtrip(b));
            if a <= b {
                prop_assert!(x <= y);
            }
        }
    }
}
