//! Matrix multiplication kernels.
//!
//! The paper restores KV via cuBLAS GEMMs; here we provide cache-blocked
//! CPU GEMMs that are fast enough for the functional test models while
//! keeping a bit-for-bit deterministic accumulation order: every output
//! element accumulates its products in one ascending-`k` chain, in every
//! entry point — serial, multi-threaded, `matmul_nt` and the single-row
//! `matvec_nt` — which lets tests compare the prefill path and the
//! restoration path for *exact* equality when they perform the same
//! mathematical operation.
//!
//! The performance-critical choice: the inner loop always runs over the
//! *output* axis `j` (`c[j] += a_ik · b[j]`), whose lanes are independent
//! and therefore vectorize, instead of over the reduction axis `k`, whose
//! floating-point adds form a serial dependency chain the compiler must not
//! reorder. `matmul_nt` gets this treatment by materializing `Bᵀ` once
//! (O(n·k), negligible against the O(m·n·k) multiply) and running the same
//! blocked kernel — measured ~4× over the naïve dot-product triple loop at
//! projection sizes.
//!
//! The `*_par` variants split work by output rows across scoped threads
//! (budget from [`ParallelConfig`]); each row is computed by the same code
//! the serial kernel runs, so thread count never changes a single bit of
//! the result.

use crate::parallel::ParallelConfig;
use crate::Tensor2;

/// Cache block edge used by the blocked kernels.
const BLOCK: usize = 64;

/// Computes C rows `[row0, row0 + c_rows.len()/n)` of `C = A · B` into the
/// caller's row-major slice. i-k blocked with the inner loop streaming over
/// contiguous rows of B and C.
fn matmul_rows(a: &Tensor2, b: &Tensor2, row0: usize, c_rows: &mut [f32]) {
    let k = a.cols();
    let n = b.cols();
    let rows = c_rows.len() / n;
    for i0 in (0..rows).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(rows);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let a_row = a.row(row0 + i);
                let c_row = &mut c_rows[i * n..(i + 1) * n];
                for (kk, &aval) in a_row.iter().enumerate().take(k1).skip(k0) {
                    if aval == 0.0 {
                        continue;
                    }
                    let b_row = b.row(kk);
                    for j in 0..n {
                        c_row[j] += aval * b_row[j];
                    }
                }
            }
        }
    }
}

/// `C = A · B` where `A` is `m×k` and `B` is `k×n`.
///
/// # Panics
/// Panics when the inner dimensions disagree.
pub fn matmul(a: &Tensor2, b: &Tensor2) -> Tensor2 {
    matmul_par(a, b, &ParallelConfig::serial())
}

/// [`matmul`] with C's rows computed in parallel under `par`'s thread
/// budget. Bit-for-bit equal to the serial kernel for every thread count.
pub fn matmul_par(a: &Tensor2, b: &Tensor2, par: &ParallelConfig) -> Tensor2 {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul inner dimension mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let m = a.rows();
    let n = b.cols();
    let mut c = Tensor2::zeros(m, n);
    if n == 0 {
        return c; // degenerate output: nothing to compute (and rows/n below would be 0/0)
    }
    par.run_row_blocks(c.as_mut_slice(), m, n, |row0, chunk| {
        matmul_rows(a, b, row0, chunk)
    });
    c
}

/// `C = A · Bᵀ` where `A` is `m×k` and `B` is `n×k`.
///
/// This is the natural layout for attention scores (`Q · Kᵀ`) when K is
/// stored tokens-major, and for projections whose weights are stored
/// `out×in` (as this crate's model layer does). Internally transposes `B`
/// once and runs the blocked vectorizable kernel; see the module docs.
pub fn matmul_nt(a: &Tensor2, b: &Tensor2) -> Tensor2 {
    matmul_nt_par(a, b, &ParallelConfig::serial())
}

/// [`matmul_nt`] with C's rows computed in parallel under `par`'s thread
/// budget. Bit-for-bit equal to the serial kernel for every thread count.
pub fn matmul_nt_par(a: &Tensor2, b: &Tensor2, par: &ParallelConfig) -> Tensor2 {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt inner dimension mismatch: {}x{} * ({}x{})^T",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let bt = b.transpose();
    let m = a.rows();
    let n = bt.cols();
    let mut c = Tensor2::zeros(m, n);
    if n == 0 {
        return c; // degenerate output: nothing to compute (and rows/n below would be 0/0)
    }
    par.run_row_blocks(c.as_mut_slice(), m, n, |row0, chunk| {
        matmul_rows(a, &bt, row0, chunk)
    });
    c
}

/// Reference `A · Bᵀ` kernel: the naïve triple loop with one scalar
/// accumulator, exactly as the original (pre-blocking) kernel computed it.
/// Kept for equivalence tests and as the baseline the `hc-bench` restore
/// benchmark measures kernel speedups against.
pub fn matmul_nt_naive(a: &Tensor2, b: &Tensor2) -> Tensor2 {
    assert_eq!(a.cols(), b.cols(), "matmul_nt_naive dimension mismatch");
    let (m, k) = a.shape();
    let n = b.rows();
    let mut c = Tensor2::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        for j in 0..n {
            let b_row = b.row(j);
            let mut acc = 0.0_f32;
            for kk in 0..k {
                acc += a_row[kk] * b_row[kk];
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// `y = x · Wᵀ` for a single row vector `x` (len `k`) and weight `W` (`n×k`).
///
/// Used on the decode path where activations are a single token. The plain
/// ascending-`k` chain per output matches the blocked kernels' accumulation
/// order, so a one-row `matmul_nt` and `matvec_nt` agree bitwise (up to
/// `±0.0`, which compares equal).
pub fn matvec_nt(x: &[f32], w: &Tensor2) -> Vec<f32> {
    assert_eq!(x.len(), w.cols(), "matvec_nt dimension mismatch");
    let mut y = vec![0.0_f32; w.rows()];
    for (j, out) in y.iter_mut().enumerate() {
        let row = w.row(j);
        let mut acc = 0.0_f32;
        for (a, b) in x.iter().zip(row.iter()) {
            acc += a * b;
        }
        *out = acc;
    }
    y
}

/// Number of floating point operations for an `m×k · k×n` GEMM, counting a
/// fused multiply-add as 2 FLOPs — the convention used by the paper (§3.2).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_tensor_eq, REL_TOL};
    use proptest::prelude::*;

    fn naive_matmul(a: &Tensor2, b: &Tensor2) -> Tensor2 {
        let (m, k) = a.shape();
        let n = b.cols();
        Tensor2::from_fn(m, n, |i, j| {
            (0..k).map(|kk| a.get(i, kk) * b.get(kk, j)).sum()
        })
    }

    fn pseudo_tensor(rows: usize, cols: usize, seed: u64) -> Tensor2 {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as i32 % 19) as f32 * 0.25 - 0.5
        };
        Tensor2::from_fn(rows, cols, |_, _| next())
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor2::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let eye = Tensor2::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_tensor_eq(&matmul(&a, &eye), &a, 0.0);
        assert_tensor_eq(&matmul(&eye, &a), &a, 0.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor2::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor2::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = Tensor2::from_fn(4, 6, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
        let b = Tensor2::from_fn(5, 6, |r, c| ((r * 2 + c) % 7) as f32 - 3.0);
        let via_nt = matmul_nt(&a, &b);
        let via_t = matmul(&a, &b.transpose());
        assert_tensor_eq(&via_nt, &via_t, REL_TOL);
    }

    #[test]
    fn matmul_nt_matches_naive_reference_exactly() {
        // The blocked kernel accumulates each output in the same
        // ascending-k chain as the naïve triple loop, so the results agree
        // to the last bit (±0.0 compares equal). Sizes cross block
        // boundaries; the generator emits zeros to exercise the skip path.
        for (m, k, n) in [(3, 5, 4), (70, 65, 33), (65, 130, 67)] {
            let a = pseudo_tensor(m, k, 11);
            let b = pseudo_tensor(n, k, 23);
            assert_tensor_eq(&matmul_nt(&a, &b), &matmul_nt_naive(&a, &b), 0.0);
        }
    }

    #[test]
    fn matvec_matches_matmul_nt_single_row() {
        let w = Tensor2::from_fn(3, 4, |r, c| (r + c) as f32);
        let x = vec![1.0, -1.0, 2.0, 0.5];
        let y = matvec_nt(&x, &w);
        let a = Tensor2::from_vec(1, 4, x);
        let expect = matmul_nt(&a, &w);
        assert_eq!(y.as_slice(), expect.row(0));
    }

    #[test]
    fn gemm_flops_counts_fma_as_two() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }

    #[test]
    fn degenerate_shapes_produce_empty_or_zero_tensors() {
        // Zero output columns / rows / reduction length must not panic.
        let a = Tensor2::zeros(2, 3);
        assert_eq!(matmul(&a, &Tensor2::zeros(3, 0)).shape(), (2, 0));
        assert_eq!(matmul_nt(&a, &Tensor2::zeros(0, 3)).shape(), (2, 0));
        assert_eq!(
            matmul(&Tensor2::zeros(0, 3), &Tensor2::zeros(3, 4)).shape(),
            (0, 4)
        );
        // k == 0: all-zero C of the right shape.
        let c = matmul(&Tensor2::zeros(2, 0), &Tensor2::zeros(0, 4));
        assert_eq!(c.shape(), (2, 4));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matmul_rectangular_blocked_crosses_block_boundary() {
        // Sizes chosen to exceed one BLOCK so the blocked path is exercised.
        let a = Tensor2::from_fn(70, 65, |r, c| ((r + 2 * c) % 9) as f32 * 0.25 - 1.0);
        let b = Tensor2::from_fn(65, 33, |r, c| ((3 * r + c) % 11) as f32 * 0.125 - 0.5);
        assert_tensor_eq(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-3);
    }

    #[test]
    fn parallel_kernels_are_bitwise_equal_across_thread_counts() {
        // Exhaustive fixed-size check (the proptest below samples shapes):
        // C from N threads must equal serial C *exactly*, for both kernels.
        let a = pseudo_tensor(67, 33, 1);
        let b = pseudo_tensor(33, 29, 2);
        let bt = pseudo_tensor(29, 33, 3);
        let serial = matmul(&a, &b);
        let serial_nt = matmul_nt(&a, &bt);
        for threads in 1..=8 {
            let par = ParallelConfig::new(threads);
            assert_eq!(
                matmul_par(&a, &b, &par).as_slice(),
                serial.as_slice(),
                "matmul diverged at {threads} threads"
            );
            assert_eq!(
                matmul_nt_par(&a, &bt, &par).as_slice(),
                serial_nt.as_slice(),
                "matmul_nt diverged at {threads} threads"
            );
        }
    }

    proptest! {
        #[test]
        fn matmul_matches_naive(
            m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000
        ) {
            let mut s = seed;
            let mut next = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as i32 % 7) as f32 * 0.5
            };
            let a = Tensor2::from_fn(m, k, |_, _| next());
            let b = Tensor2::from_fn(k, n, |_, _| next());
            let fast = matmul(&a, &b);
            let slow = naive_matmul(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    prop_assert!(crate::approx_eq(fast.get(i, j), slow.get(i, j), 1e-3));
                }
            }
        }

        #[test]
        fn matmul_is_linear_in_first_argument(
            m in 1usize..5, k in 1usize..5, n in 1usize..5, alpha in -2.0f32..2.0
        ) {
            let a = Tensor2::from_fn(m, k, |r, c| (r as f32 - c as f32) * 0.5);
            let b = Tensor2::from_fn(k, n, |r, c| (r * n + c) as f32 * 0.1);
            let mut a_scaled = a.clone();
            a_scaled.scale(alpha);
            let mut lhs = matmul(&a, &b);
            lhs.scale(alpha);
            let rhs = matmul(&a_scaled, &b);
            for i in 0..m {
                for j in 0..n {
                    prop_assert!(crate::approx_eq(lhs.get(i, j), rhs.get(i, j), 1e-3));
                }
            }
        }

        #[test]
        fn parallel_matmul_is_bitwise_equal_to_serial(
            m in 1usize..40, k in 1usize..24, n in 1usize..24,
            seed in 0u64..500, threads in 1usize..9
        ) {
            let a = pseudo_tensor(m, k, seed);
            let b = pseudo_tensor(k, n, seed ^ 0xabcd);
            let serial = matmul(&a, &b);
            let par = matmul_par(&a, &b, &ParallelConfig::new(threads));
            prop_assert_eq!(serial.as_slice(), par.as_slice());
        }

        #[test]
        fn parallel_matmul_nt_is_bitwise_equal_to_serial(
            m in 1usize..40, k in 1usize..24, n in 1usize..24,
            seed in 0u64..500, threads in 1usize..9
        ) {
            let a = pseudo_tensor(m, k, seed);
            let b = pseudo_tensor(n, k, seed ^ 0x1234);
            let serial = matmul_nt(&a, &b);
            let par = matmul_nt_par(&a, &b, &ParallelConfig::new(threads));
            prop_assert_eq!(serial.as_slice(), par.as_slice());
        }
    }
}
