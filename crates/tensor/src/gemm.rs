//! Matrix multiplication kernels.
//!
//! The paper restores KV via cuBLAS GEMMs; here we provide a cache-blocked
//! CPU GEMM that is fast enough for the functional test models while keeping
//! a bit-for-bit deterministic accumulation order (plain loop order inside a
//! block, blocks visited in row-major order), which lets tests compare the
//! prefill path and the restoration path for *exact* equality when they
//! perform the same mathematical operation.

use crate::Tensor2;

/// Cache block edge used by the blocked kernels.
const BLOCK: usize = 64;

/// `C = A · B` where `A` is `m×k` and `B` is `k×n`.
///
/// # Panics
/// Panics when the inner dimensions disagree.
pub fn matmul(a: &Tensor2, b: &Tensor2) -> Tensor2 {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul inner dimension mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Tensor2::zeros(m, n);
    // i-k-j loop order with the inner loop streaming over contiguous rows of
    // B and C: decent locality without any unsafe code.
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let a_row = a.row(i);
                let c_row_start = i * n;
                for kk in k0..k1 {
                    let aval = a_row[kk];
                    if aval == 0.0 {
                        continue;
                    }
                    let b_row = b.row(kk);
                    let c_data = c.as_mut_slice();
                    for j in 0..n {
                        c_data[c_row_start + j] += aval * b_row[j];
                    }
                }
            }
        }
    }
    c
}

/// `C = A · Bᵀ` where `A` is `m×k` and `B` is `n×k`.
///
/// This is the natural layout for attention scores (`Q · Kᵀ`) when K is
/// stored tokens-major, and for projections whose weights are stored
/// `out×in` (as this crate's model layer does).
pub fn matmul_nt(a: &Tensor2, b: &Tensor2) -> Tensor2 {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt inner dimension mismatch: {}x{} * ({}x{})^T",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.rows();
    let mut c = Tensor2::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        for j in 0..n {
            let b_row = b.row(j);
            let mut acc = 0.0_f32;
            for kk in 0..k {
                acc += a_row[kk] * b_row[kk];
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// `y = x · Wᵀ` for a single row vector `x` (len `k`) and weight `W` (`n×k`).
///
/// Used on the decode path where activations are a single token.
pub fn matvec_nt(x: &[f32], w: &Tensor2) -> Vec<f32> {
    assert_eq!(x.len(), w.cols(), "matvec_nt dimension mismatch");
    let mut y = vec![0.0_f32; w.rows()];
    for (j, out) in y.iter_mut().enumerate() {
        let row = w.row(j);
        let mut acc = 0.0_f32;
        for (a, b) in x.iter().zip(row.iter()) {
            acc += a * b;
        }
        *out = acc;
    }
    y
}

/// Number of floating point operations for an `m×k · k×n` GEMM, counting a
/// fused multiply-add as 2 FLOPs — the convention used by the paper (§3.2).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_tensor_eq, REL_TOL};
    use proptest::prelude::*;

    fn naive_matmul(a: &Tensor2, b: &Tensor2) -> Tensor2 {
        let (m, k) = a.shape();
        let n = b.cols();
        Tensor2::from_fn(m, n, |i, j| {
            (0..k).map(|kk| a.get(i, kk) * b.get(kk, j)).sum()
        })
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor2::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let eye = Tensor2::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_tensor_eq(&matmul(&a, &eye), &a, 0.0);
        assert_tensor_eq(&matmul(&eye, &a), &a, 0.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor2::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor2::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = Tensor2::from_fn(4, 6, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
        let b = Tensor2::from_fn(5, 6, |r, c| ((r * 2 + c) % 7) as f32 - 3.0);
        let via_nt = matmul_nt(&a, &b);
        let via_t = matmul(&a, &b.transpose());
        assert_tensor_eq(&via_nt, &via_t, REL_TOL);
    }

    #[test]
    fn matvec_matches_matmul_nt_single_row() {
        let w = Tensor2::from_fn(3, 4, |r, c| (r + c) as f32);
        let x = vec![1.0, -1.0, 2.0, 0.5];
        let y = matvec_nt(&x, &w);
        let a = Tensor2::from_vec(1, 4, x);
        let expect = matmul_nt(&a, &w);
        assert_eq!(y.as_slice(), expect.row(0));
    }

    #[test]
    fn gemm_flops_counts_fma_as_two() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }

    #[test]
    fn matmul_rectangular_blocked_crosses_block_boundary() {
        // Sizes chosen to exceed one BLOCK so the blocked path is exercised.
        let a = Tensor2::from_fn(70, 65, |r, c| ((r + 2 * c) % 9) as f32 * 0.25 - 1.0);
        let b = Tensor2::from_fn(65, 33, |r, c| ((3 * r + c) % 11) as f32 * 0.125 - 0.5);
        assert_tensor_eq(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-3);
    }

    proptest! {
        #[test]
        fn matmul_matches_naive(
            m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000
        ) {
            let mut s = seed;
            let mut next = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as i32 % 7) as f32 * 0.5
            };
            let a = Tensor2::from_fn(m, k, |_, _| next());
            let b = Tensor2::from_fn(k, n, |_, _| next());
            let fast = matmul(&a, &b);
            let slow = naive_matmul(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    prop_assert!(crate::approx_eq(fast.get(i, j), slow.get(i, j), 1e-3));
                }
            }
        }

        #[test]
        fn matmul_is_linear_in_first_argument(
            m in 1usize..5, k in 1usize..5, n in 1usize..5, alpha in -2.0f32..2.0
        ) {
            let a = Tensor2::from_fn(m, k, |r, c| (r as f32 - c as f32) * 0.5);
            let b = Tensor2::from_fn(k, n, |r, c| (r * n + c) as f32 * 0.1);
            let mut a_scaled = a.clone();
            a_scaled.scale(alpha);
            let mut lhs = matmul(&a, &b);
            lhs.scale(alpha);
            let rhs = matmul(&a_scaled, &b);
            for i in 0..m {
                for j in 0..n {
                    prop_assert!(crate::approx_eq(lhs.get(i, j), rhs.get(i, j), 1e-3));
                }
            }
        }
    }
}
