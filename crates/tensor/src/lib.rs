//! # hc-tensor
//!
//! Portable CPU tensor kernels for the HCache reproduction.
//!
//! The paper's implementation runs fp16 CUDA kernels (cuBLAS GEMM, fused
//! attention, RoPE). This crate provides functionally equivalent f32 CPU
//! kernels so that the *dataflow* of HCache — in particular the lossless
//! `K = Wk · norm(H)` restoration — can be executed and verified for real.
//!
//! Contents:
//! * [`Tensor2`] — a dense row-major 2-D f32 tensor with the small set of
//!   operations an inference engine needs.
//! * [`gemm`] — blocked matrix multiplication kernels (`A·B`, `A·Bᵀ`).
//! * [`ops`] — softmax, RMSNorm, LayerNorm, SiLU, GELU, residual adds.
//! * [`rope`] — rotary position embeddings (applied to Q and K).
//! * [`f16`] — an IEEE-754 binary16 codec used by the storage layer to keep
//!   on-disk sizes faithful to the paper's fp16 state (2 bytes/element).
//! * [`quant`] — symmetric per-row int8 quantization (the §7 extension for
//!   compressing stored hidden states further).
//! * [`parallel`] — the [`ParallelConfig`] thread budget shared by the
//!   multi-threaded kernel variants (`gemm::matmul_par`,
//!   `gemm::matmul_nt_par`, `f16::encode_f16_par`, `f16::decode_f16_par`),
//!   all bit-for-bit equal to their serial counterparts.

pub mod f16;
pub mod gemm;
pub mod ops;
pub mod parallel;
pub mod quant;
pub mod rope;
pub mod tensor;

pub use parallel::ParallelConfig;
pub use tensor::Tensor2;

/// Maximum relative error tolerated when comparing two floats that went
/// through different-but-equivalent computation orders.
pub const REL_TOL: f32 = 1e-4;

/// Returns true when `a` and `b` are equal within a mixed absolute/relative
/// tolerance. Used throughout the test suites.
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= scale * tol
}

/// Asserts element-wise approximate equality of two tensors.
///
/// # Panics
/// Panics with the offending coordinate when a mismatch is found.
pub fn assert_tensor_eq(a: &Tensor2, b: &Tensor2, tol: f32) {
    assert_eq!(a.rows(), b.rows(), "row count mismatch");
    assert_eq!(a.cols(), b.cols(), "col count mismatch");
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let (x, y) = (a.get(r, c), b.get(r, c));
            assert!(
                approx_eq(x, y, tol),
                "tensors differ at ({r},{c}): {x} vs {y}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_near_zero() {
        assert!(approx_eq(1e-9, -1e-9, 1e-6));
    }

    #[test]
    fn approx_eq_relative_large() {
        assert!(approx_eq(1000.0, 1000.05, 1e-4));
        assert!(!approx_eq(1000.0, 1001.0, 1e-4));
    }

    #[test]
    fn assert_tensor_eq_passes_on_identical() {
        let t = Tensor2::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        assert_tensor_eq(&t, &t.clone(), 0.0);
    }

    #[test]
    #[should_panic(expected = "tensors differ")]
    fn assert_tensor_eq_panics_on_mismatch() {
        let a = Tensor2::zeros(2, 2);
        let mut b = Tensor2::zeros(2, 2);
        b.set(1, 1, 5.0);
        assert_tensor_eq(&a, &b, 1e-6);
    }
}
