//! Element-wise and normalization kernels used by the transformer layers.

use crate::Tensor2;

/// Numerically stable in-place softmax over a slice.
///
/// Empty slices are a no-op.
pub fn softmax_inplace(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0_f32;
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    // `sum >= 1` because the max element maps to exp(0) = 1, so the division
    // is always well-defined.
    for v in xs.iter_mut() {
        *v /= sum;
    }
}

/// Row-wise softmax over a tensor (each row normalized independently).
pub fn softmax_rows(t: &mut Tensor2) {
    for r in 0..t.rows() {
        softmax_inplace(t.row_mut(r));
    }
}

/// RMSNorm as used by Llama-family models:
/// `y_i = x_i / sqrt(mean(x^2) + eps) * g_i`.
pub fn rmsnorm(x: &[f32], gain: &[f32], eps: f32) -> Vec<f32> {
    assert_eq!(x.len(), gain.len(), "rmsnorm gain length mismatch");
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    x.iter().zip(gain).map(|(v, g)| v * inv * g).collect()
}

/// Applies [`rmsnorm`] to every row, producing a new tensor.
pub fn rmsnorm_rows(t: &Tensor2, gain: &[f32], eps: f32) -> Tensor2 {
    let mut out = Tensor2::zeros(t.rows(), t.cols());
    for r in 0..t.rows() {
        let y = rmsnorm(t.row(r), gain, eps);
        out.row_mut(r).copy_from_slice(&y);
    }
    out
}

/// LayerNorm as used by OPT-family models:
/// `y_i = (x_i - mean) / sqrt(var + eps) * g_i + b_i`.
pub fn layernorm(x: &[f32], gain: &[f32], bias: &[f32], eps: f32) -> Vec<f32> {
    assert_eq!(x.len(), gain.len(), "layernorm gain length mismatch");
    assert_eq!(x.len(), bias.len(), "layernorm bias length mismatch");
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + eps).sqrt();
    x.iter()
        .zip(gain.iter().zip(bias))
        .map(|(v, (g, b))| (v - mean) * inv * g + b)
        .collect()
}

/// SiLU (a.k.a. swish) activation: `x * sigmoid(x)`.
#[inline]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// tanh-approximated GELU activation (the common transformer variant).
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Applies an activation function element-wise in place.
pub fn map_inplace(t: &mut Tensor2, f: impl Fn(f32) -> f32) {
    for v in t.as_mut_slice() {
        *v = f(*v);
    }
}

/// `out = a + b` element-wise (residual connection).
pub fn add(a: &Tensor2, b: &Tensor2) -> Tensor2 {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    let mut out = a.clone();
    out.add_assign(b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_handles_large_values_without_overflow() {
        let mut xs = vec![1000.0, 1000.0];
        softmax_inplace(&mut xs);
        assert!((xs[0] - 0.5).abs() < 1e-6);
        assert!(xs.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut xs: Vec<f32> = vec![];
        softmax_inplace(&mut xs);
        assert!(xs.is_empty());
    }

    #[test]
    fn softmax_single_element_is_one() {
        let mut xs = vec![-42.0];
        softmax_inplace(&mut xs);
        assert_eq!(xs, vec![1.0]);
    }

    #[test]
    fn rmsnorm_unit_gain_gives_unit_rms() {
        let x = vec![3.0, -4.0, 12.0, 1.0];
        let g = vec![1.0; 4];
        let y = rmsnorm(&x, &g, 1e-6);
        let rms = (y.iter().map(|v| v * v).sum::<f32>() / 4.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let g = vec![1.0; 4];
        let b = vec![0.0; 4];
        let y = layernorm(&x, &g, &b, 1e-6);
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_applies_bias() {
        let x = vec![0.0, 0.0];
        let g = vec![1.0, 1.0];
        let b = vec![5.0, -5.0];
        let y = layernorm(&x, &g, &b, 1e-6);
        assert_eq!(y, vec![5.0, -5.0]);
    }

    #[test]
    fn silu_and_gelu_fixed_points() {
        assert_eq!(silu(0.0), 0.0);
        assert_eq!(gelu(0.0), 0.0);
        // For large x both approach identity.
        assert!((silu(20.0) - 20.0).abs() < 1e-3);
        assert!((gelu(20.0) - 20.0).abs() < 1e-3);
    }

    #[test]
    fn add_is_elementwise() {
        let a = Tensor2::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor2::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        assert_eq!(add(&a, &b).as_slice(), &[11.0, 22.0, 33.0]);
    }

    proptest! {
        #[test]
        fn softmax_is_shift_invariant(v in proptest::collection::vec(-10.0f32..10.0, 1..16), shift in -5.0f32..5.0) {
            let mut a = v.clone();
            let mut b: Vec<f32> = v.iter().map(|x| x + shift).collect();
            softmax_inplace(&mut a);
            softmax_inplace(&mut b);
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn rmsnorm_is_scale_equivariant_in_gain(
            v in proptest::collection::vec(-3.0f32..3.0, 2..12), alpha in 0.1f32..3.0
        ) {
            // rmsnorm(x, alpha*g) == alpha * rmsnorm(x, g)
            let g = vec![1.0; v.len()];
            let ga: Vec<f32> = g.iter().map(|x| x * alpha).collect();
            let y1: Vec<f32> = rmsnorm(&v, &g, 1e-6).iter().map(|x| x * alpha).collect();
            let y2 = rmsnorm(&v, &ga, 1e-6);
            for (a, b) in y1.iter().zip(y2.iter()) {
                prop_assert!(crate::approx_eq(*a, *b, 1e-4));
            }
        }

        #[test]
        fn silu_is_monotone(a in -10.0f32..10.0, b in -10.0f32..10.0) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            // SiLU is monotone for x >= -1.28 and we only rely on it there.
            if lo > -1.0 {
                prop_assert!(silu(lo) <= silu(hi) + 1e-6);
            }
        }
    }
}
