//! Thread-budget configuration and the scoped row-parallel helper.
//!
//! Everything multi-threaded in the workspace — the blocked GEMM kernels,
//! the f16 bulk codec, the storage chunk codec and the restore prefetcher —
//! draws its thread budget from one [`ParallelConfig`], so the saving
//! daemon and the restoration pipeline never oversubscribe the host
//! (§4.2.2's chunk daemon and §4.1.2's two-stream schedule share cores in
//! the paper's host runtime too).
//!
//! Parallel kernels built on [`ParallelConfig::run_row_blocks`] split work
//! by *output rows* and leave the per-row computation untouched, so their
//! results are bit-for-bit identical to the serial kernels no matter the
//! thread count — the property the restoration-losslessness tests rely on.

/// Thread budget shared by the parallel kernels and pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    threads: usize,
}

impl ParallelConfig {
    /// A budget of exactly `threads` worker threads (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The single-threaded budget: parallel entry points degrade to the
    /// serial kernels with no thread spawns at all.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// One thread per available core (as the OS reports it).
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::new(n)
    }

    /// Worker threads in the budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when the budget is one thread (serial fallback).
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Runs `work` over `n_rows` of output split into contiguous row blocks,
    /// one scoped thread per block. `work(row0, rows_chunk)` receives the
    /// absolute index of its first row plus the mutable slice of `data`
    /// holding its rows (`row_width` elements each).
    ///
    /// With one thread (or one row) this calls `work` inline — the serial
    /// kernels and the parallel ones share every instruction that touches
    /// data.
    ///
    /// # Panics
    /// Panics when `data.len() != n_rows * row_width`.
    pub fn run_row_blocks<T, F>(&self, data: &mut [T], n_rows: usize, row_width: usize, work: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert_eq!(data.len(), n_rows * row_width, "row block shape mismatch");
        if n_rows == 0 {
            return;
        }
        let threads = self.threads.min(n_rows);
        if threads <= 1 {
            work(0, data);
            return;
        }
        // Contiguous blocks of ⌈n_rows / threads⌉ rows; the remainder makes
        // the last block shorter.
        let rows_per = n_rows.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut row0 = 0usize;
            while row0 < n_rows {
                let take = rows_per.min(n_rows - row0);
                let (head, tail) = rest.split_at_mut(take * row_width);
                let work = &work;
                scope.spawn(move || work(row0, head));
                rest = tail;
                row0 += take;
            }
        });
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_clamped_to_one() {
        assert_eq!(ParallelConfig::new(0).threads(), 1);
        assert!(ParallelConfig::new(0).is_serial());
        assert!(!ParallelConfig::new(3).is_serial());
    }

    #[test]
    fn auto_reports_at_least_one_thread() {
        assert!(ParallelConfig::auto().threads() >= 1);
    }

    #[test]
    fn row_blocks_cover_every_row_exactly_once() {
        for threads in 1..=8 {
            let cfg = ParallelConfig::new(threads);
            let n_rows = 13;
            let width = 3;
            let mut data = vec![0u32; n_rows * width];
            cfg.run_row_blocks(&mut data, n_rows, width, |row0, chunk| {
                for (i, row) in chunk.chunks_mut(width).enumerate() {
                    for v in row.iter_mut() {
                        *v += (row0 + i) as u32 + 1;
                    }
                }
            });
            let expect: Vec<u32> = (0..n_rows)
                .flat_map(|r| std::iter::repeat_n(r as u32 + 1, width))
                .collect();
            assert_eq!(data, expect, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let cfg = ParallelConfig::new(16);
        let mut data = vec![0u8; 2 * 4];
        cfg.run_row_blocks(&mut data, 2, 4, |_, chunk| chunk.fill(7));
        assert!(data.iter().all(|&v| v == 7));
    }

    #[test]
    fn zero_rows_is_a_noop() {
        let cfg = ParallelConfig::new(4);
        let mut data: Vec<f32> = Vec::new();
        cfg.run_row_blocks(&mut data, 0, 8, |_, _| panic!("no work expected"));
    }
}
