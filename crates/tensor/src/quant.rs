//! Int8 quantization codec for stored activations.
//!
//! §7 of the paper notes that KV-cache quantization methods (CacheGen, KIVI,
//! …) "can be applied in HCache to reduce the size of hidden states". This
//! module provides the simplest sound variant: symmetric per-row int8
//! quantization (one f32 scale per token row). It halves storage and IO
//! relative to fp16 at the cost of bounded quantization error — the
//! `ext_quantization` experiment quantifies the trade-off.
//!
//! Wire format per row: 4-byte little-endian f32 scale, then `width` i8
//! values; `x ≈ scale * q` with `q ∈ [-127, 127]`.

/// Bytes per stored element (excluding the per-row scale).
pub const BYTES_PER_ELEM: usize = 1;

/// Encoded size of `rows` rows of `width` elements.
pub fn encoded_len(rows: usize, width: usize) -> usize {
    rows * (4 + width * BYTES_PER_ELEM)
}

/// Quantizes row-major `xs` (`rows × width`) to the int8 wire format.
///
/// # Panics
/// Panics when `xs.len()` is not a multiple of `width`.
pub fn encode_int8(xs: &[f32], width: usize) -> Vec<u8> {
    assert!(width > 0, "width must be positive");
    assert_eq!(xs.len() % width, 0, "ragged rows");
    let rows = xs.len() / width;
    let mut out = Vec::with_capacity(encoded_len(rows, width));
    for row in xs.chunks_exact(width) {
        let max_abs = row.iter().fold(0.0_f32, |m, v| m.max(v.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        out.extend_from_slice(&scale.to_le_bytes());
        for &v in row {
            let q = (v / scale).round().clamp(-127.0, 127.0) as i8;
            out.push(q as u8);
        }
    }
    out
}

/// Decodes the int8 wire format back to f32 rows.
///
/// # Panics
/// Panics when the byte stream is not a whole number of `width`-rows.
pub fn decode_int8(bytes: &[u8], width: usize) -> Vec<f32> {
    assert!(width > 0, "width must be positive");
    let row_bytes = 4 + width;
    assert_eq!(bytes.len() % row_bytes, 0, "truncated int8 stream");
    let rows = bytes.len() / row_bytes;
    let mut out = Vec::with_capacity(rows * width);
    for row in bytes.chunks_exact(row_bytes) {
        let scale = f32::from_le_bytes([row[0], row[1], row[2], row[3]]);
        for &b in &row[4..] {
            out.push((b as i8) as f32 * scale);
        }
    }
    out
}

/// Round-trip error bound for one row: `|x - dec(enc(x))| <= max|row| / 254`
/// (half a quantization step).
pub fn row_error_bound(row: &[f32]) -> f32 {
    let max_abs = row.iter().fold(0.0_f32, |m, v| m.max(v.abs()));
    max_abs / 254.0 + f32::EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_exact_for_scale_multiples() {
        // Values that are exact multiples of the scale survive unchanged.
        let xs = vec![127.0, -127.0, 0.0, 64.0, -1.0];
        let back = decode_int8(&encode_int8(&xs, 5), 5);
        assert_eq!(back, xs);
    }

    #[test]
    fn error_bounded_by_half_step() {
        let xs: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let back = decode_int8(&encode_int8(&xs, 16), 16);
        for (chunk, dchunk) in xs.chunks(16).zip(back.chunks(16)) {
            let bound = row_error_bound(chunk);
            for (a, b) in chunk.iter().zip(dchunk.iter()) {
                assert!((a - b).abs() <= bound, "{a} vs {b}, bound {bound}");
            }
        }
    }

    #[test]
    fn all_zero_row_roundtrips() {
        let xs = vec![0.0; 8];
        assert_eq!(decode_int8(&encode_int8(&xs, 8), 8), xs);
    }

    #[test]
    fn encoded_size_is_half_of_f16_plus_scale() {
        // 64 rows of 4096: f16 = 512 KiB; int8 = 256 KiB + 64 scales.
        let f16 = 64 * 4096 * 2;
        let int8 = encoded_len(64, 4096);
        assert_eq!(int8, 64 * (4 + 4096));
        assert!((int8 as f64) < 0.51 * f16 as f64);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_input_rejected() {
        let _ = encode_int8(&[1.0; 7], 4);
    }

    #[test]
    #[should_panic(expected = "truncated int8 stream")]
    fn truncated_stream_rejected() {
        let _ = decode_int8(&[0u8; 9], 8);
    }

    proptest! {
        #[test]
        fn roundtrip_error_within_bound(
            row in proptest::collection::vec(-100.0f32..100.0, 1..64)
        ) {
            let w = row.len();
            let back = decode_int8(&encode_int8(&row, w), w);
            let bound = row_error_bound(&row);
            for (a, b) in row.iter().zip(back.iter()) {
                prop_assert!((a - b).abs() <= bound, "{} vs {} bound {}", a, b, bound);
            }
        }

        #[test]
        fn quantization_is_idempotent(
            row in proptest::collection::vec(-10.0f32..10.0, 1..32)
        ) {
            let w = row.len();
            let once = decode_int8(&encode_int8(&row, w), w);
            let twice = decode_int8(&encode_int8(&once, w), w);
            for (a, b) in once.iter().zip(twice.iter()) {
                prop_assert!((a - b).abs() <= 1e-4 * a.abs().max(1.0));
            }
        }
    }
}
