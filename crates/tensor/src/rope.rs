//! Rotary position embeddings (RoPE).
//!
//! HCache's restoration path recomputes K from stored hidden states and must
//! then re-apply RoPE with each token's *original* absolute position (the
//! paper implements a custom CUDA kernel for exactly this, following
//! AttentionStore). Both the prefill path and the restoration path in this
//! repo call the same functions below, which is what makes the end-to-end
//! losslessness test meaningful.

/// Default RoPE base used by Llama-family models.
pub const DEFAULT_ROPE_BASE: f32 = 10_000.0;

/// Applies RoPE in place to one head vector `x` (length = head_dim, must be
/// even) for absolute position `pos`.
///
/// Pairs `(x[2i], x[2i+1])` are rotated by angle `pos / base^(2i/d)`.
pub fn rope_inplace(x: &mut [f32], pos: usize, base: f32) {
    let d = x.len();
    assert!(
        d.is_multiple_of(2),
        "RoPE head dimension must be even, got {d}"
    );
    let half = d / 2;
    for i in 0..half {
        let theta = (pos as f32) * base.powf(-2.0 * i as f32 / d as f32);
        let (sin, cos) = theta.sin_cos();
        let a = x[2 * i];
        let b = x[2 * i + 1];
        x[2 * i] = a * cos - b * sin;
        x[2 * i + 1] = a * sin + b * cos;
    }
}

/// Applies RoPE to a full row of concatenated heads.
///
/// `row` has length `n_heads * head_dim`; each head segment is rotated
/// independently with the same position.
pub fn rope_row(row: &mut [f32], pos: usize, n_heads: usize, base: f32) {
    assert_eq!(row.len() % n_heads, 0, "row not divisible into heads");
    let head_dim = row.len() / n_heads;
    for h in 0..n_heads {
        rope_inplace(&mut row[h * head_dim..(h + 1) * head_dim], pos, base);
    }
}

/// Inverse rotation; `unrope(rope(x)) == x` up to float error.
pub fn unrope_inplace(x: &mut [f32], pos: usize, base: f32) {
    let d = x.len();
    assert!(
        d.is_multiple_of(2),
        "RoPE head dimension must be even, got {d}"
    );
    let half = d / 2;
    for i in 0..half {
        let theta = (pos as f32) * base.powf(-2.0 * i as f32 / d as f32);
        let (sin, cos) = theta.sin_cos();
        let a = x[2 * i];
        let b = x[2 * i + 1];
        x[2 * i] = a * cos + b * sin;
        x[2 * i + 1] = -a * sin + b * cos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn position_zero_is_identity() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let orig = x.clone();
        rope_inplace(&mut x, 0, DEFAULT_ROPE_BASE);
        assert_eq!(x, orig);
    }

    #[test]
    fn rotation_preserves_norm() {
        let mut x = vec![1.0, -2.0, 0.5, 3.0, -1.5, 0.25];
        let norm_before: f32 = x.iter().map(|v| v * v).sum();
        rope_inplace(&mut x, 17, DEFAULT_ROPE_BASE);
        let norm_after: f32 = x.iter().map(|v| v * v).sum();
        assert!((norm_before - norm_after).abs() < 1e-4);
    }

    #[test]
    fn unrope_inverts_rope() {
        let mut x = vec![0.3, -0.7, 1.1, 2.2, -0.9, 0.05, 4.0, -4.0];
        let orig = x.clone();
        rope_inplace(&mut x, 123, DEFAULT_ROPE_BASE);
        unrope_inplace(&mut x, 123, DEFAULT_ROPE_BASE);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn rope_row_rotates_each_head_independently() {
        // Two identical heads must stay identical after rotation.
        let mut row = vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0];
        rope_row(&mut row, 5, 2, DEFAULT_ROPE_BASE);
        assert_eq!(&row[0..4], &row[4..8]);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_head_dim_rejected() {
        let mut x = vec![1.0, 2.0, 3.0];
        rope_inplace(&mut x, 1, DEFAULT_ROPE_BASE);
    }

    #[test]
    fn relative_angle_property() {
        // RoPE's defining property: <rope(q,m), rope(k,n)> depends only on
        // (m - n). Check a 2-d case against direct rotation arithmetic.
        let q = [1.0_f32, 0.0];
        let k = [0.0_f32, 1.0];
        let dot = |m: usize, n: usize| {
            let mut qq = q;
            let mut kk = k;
            rope_inplace(&mut qq, m, DEFAULT_ROPE_BASE);
            rope_inplace(&mut kk, n, DEFAULT_ROPE_BASE);
            qq[0] * kk[0] + qq[1] * kk[1]
        };
        assert!((dot(7, 3) - dot(14, 10)).abs() < 1e-5);
        assert!((dot(2, 2) - dot(9, 9)).abs() < 1e-5);
    }

    proptest! {
        #[test]
        fn rope_roundtrip_random(
            v in proptest::collection::vec(-5.0f32..5.0, 2..10),
            pos in 0usize..4096
        ) {
            let mut x: Vec<f32> = v.clone();
            if x.len() % 2 == 1 { x.pop(); }
            if x.is_empty() { return Ok(()); }
            let orig = x.clone();
            rope_inplace(&mut x, pos, DEFAULT_ROPE_BASE);
            unrope_inplace(&mut x, pos, DEFAULT_ROPE_BASE);
            for (a, b) in x.iter().zip(orig.iter()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }
    }
}
