//! Dense row-major 2-D f32 tensor.
//!
//! Kept deliberately small: the inference engine only needs construction,
//! element/row access, slicing by row ranges, and a handful of in-place
//! element-wise operations. All shape violations panic — shapes are static
//! properties of the model architecture, so a mismatch is a programming
//! error, not a runtime condition to recover from.

use std::fmt;

/// A dense row-major matrix of `f32` values.
///
/// `rows` is typically the token axis and `cols` the feature axis, matching
/// the layout used by LLM inference engines (tokens-major activations).
#[derive(Clone, PartialEq)]
pub struct Tensor2 {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor2 {
    /// Creates a `rows × cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a tensor by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { data, rows, cols }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { data, rows, cols }
    }

    /// Number of rows (token axis).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (feature axis).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads one element.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Writes one element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutably borrows row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// The whole backing buffer in row-major order.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Copies rows `[start, end)` into a new tensor.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor2 {
        assert!(
            start <= end && end <= self.rows,
            "bad row range {start}..{end}"
        );
        let data = self.data[start * self.cols..end * self.cols].to_vec();
        Tensor2 {
            data,
            rows: end - start,
            cols: self.cols,
        }
    }

    /// Vertically concatenates `self` on top of `other`.
    ///
    /// # Panics
    /// Panics when column counts differ.
    pub fn vcat(&self, other: &Tensor2) -> Tensor2 {
        assert_eq!(self.cols, other.cols, "vcat column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Tensor2 {
            data,
            rows: self.rows + other.rows,
            cols: self.cols,
        }
    }

    /// Appends the rows of `other` in place.
    pub fn append_rows(&mut self, other: &Tensor2) {
        assert_eq!(self.cols, other.cols, "append_rows column mismatch");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Returns the transpose as a new tensor.
    pub fn transpose(&self) -> Tensor2 {
        let mut out = Tensor2::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor2) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Maximum absolute element; 0 for empty tensors.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl fmt::Debug for Tensor2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor2({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 36 {
            writeln!(f)?;
            for r in 0..self.rows {
                writeln!(f, "  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let t = Tensor2::zeros(2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.len(), 6);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let t = Tensor2::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(0, 2), 2.0);
        assert_eq!(t.get(1, 0), 10.0);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor2::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn row_access_and_mutation() {
        let mut t = Tensor2::from_fn(3, 2, |r, _| r as f32);
        assert_eq!(t.row(1), &[1.0, 1.0]);
        t.row_mut(1)[0] = 9.0;
        assert_eq!(t.get(1, 0), 9.0);
    }

    #[test]
    fn slice_rows_copies_range() {
        let t = Tensor2::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let s = t.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn vcat_and_append_rows_agree() {
        let a = Tensor2::from_fn(2, 2, |r, c| (r + c) as f32);
        let b = Tensor2::from_fn(1, 2, |_, c| (10 + c) as f32);
        let cat = a.vcat(&b);
        let mut app = a.clone();
        app.append_rows(&b);
        assert_eq!(cat, app);
        assert_eq!(cat.rows(), 3);
    }

    #[test]
    fn transpose_round_trips() {
        let t = Tensor2::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(t.transpose().transpose(), t);
        assert_eq!(t.transpose().get(4, 2), t.get(2, 4));
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor2::from_fn(2, 2, |_, _| 1.0);
        let b = Tensor2::from_fn(2, 2, |_, _| 2.0);
        a.add_assign(&b);
        a.scale(0.5);
        assert!(a.as_slice().iter().all(|&v| v == 1.5));
    }

    #[test]
    fn norms() {
        let t = Tensor2::from_vec(1, 2, vec![3.0, -4.0]);
        assert_eq!(t.max_abs(), 4.0);
        assert!((t.frob_norm() - 5.0).abs() < 1e-6);
    }
}
