//! Arrival processes: Poisson session arrivals (§6.1.1) and helpers to
//! assemble a timed request stream from sessions.

use crate::rng::Rng;
use crate::sharegpt::Session;
use crate::Request;

/// Draws Poisson arrival times with `rate` arrivals/second until `horizon`
/// seconds.
pub fn poisson_arrivals(rate: f64, horizon: f64, seed: u64) -> Vec<f64> {
    assert!(rate > 0.0, "rate must be positive");
    let mut rng = Rng::new(seed);
    let mut t = 0.0;
    let mut out = Vec::new();
    loop {
        t += rng.exponential(rate);
        if t > horizon {
            break;
        }
        out.push(t);
    }
    out
}

/// Assigns each session a Poisson start time and offsets its rounds,
/// returning the merged request stream sorted by arrival. Sessions beyond
/// the number of arrivals in the horizon are dropped (matching how a load
/// generator runs for a fixed duration).
pub fn schedule_sessions(sessions: &[Session], rate: f64, horizon: f64, seed: u64) -> Vec<Request> {
    let starts = poisson_arrivals(rate, horizon, seed);
    let mut out = Vec::new();
    for (session, start) in sessions.iter().zip(starts.iter()) {
        for r in &session.rounds {
            let mut r = r.clone();
            r.arrival += start;
            out.push(r);
        }
    }
    out.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharegpt::{generate_sessions, ShareGptConfig};

    #[test]
    fn poisson_rate_matches() {
        let arr = poisson_arrivals(2.0, 10_000.0, 42);
        let rate = arr.len() as f64 / 10_000.0;
        assert!((rate - 2.0).abs() < 0.1, "observed rate {rate}");
    }

    #[test]
    fn poisson_is_sorted_and_within_horizon() {
        let arr = poisson_arrivals(0.5, 1000.0, 1);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.iter().all(|&t| t <= 1000.0));
    }

    #[test]
    fn poisson_interarrival_cv_near_one() {
        // Exponential inter-arrivals have coefficient of variation 1.
        let arr = poisson_arrivals(1.0, 50_000.0, 9);
        let gaps: Vec<f64> = arr.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = crate::stats::mean(&gaps);
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn schedule_preserves_round_spacing() {
        let sessions = generate_sessions(20, &ShareGptConfig::default(), 3);
        let reqs = schedule_sessions(&sessions, 0.1, 10_000.0, 4);
        // Within a session, consecutive rounds stay 30 s apart.
        for s in &sessions {
            let mine: Vec<&Request> = reqs.iter().filter(|r| r.session_id == s.id).collect();
            if mine.len() >= 2 {
                for w in mine.windows(2) {
                    assert!((w[1].arrival - w[0].arrival - 30.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn schedule_output_is_sorted() {
        let sessions = generate_sessions(50, &ShareGptConfig::default(), 5);
        let reqs = schedule_sessions(&sessions, 0.5, 5_000.0, 6);
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(!reqs.is_empty());
    }
}
