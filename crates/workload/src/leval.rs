//! L-Eval-like long-context workload generator (Table 1).
//!
//! L-Eval contains 20 sub-tasks; the paper reports three representative ones
//! plus the overall average. Each request has a long reusable *context*
//! (paper/document/few-shot examples), a short instruction, and a short
//! output — the bimodal shape noted in §2.3.

use crate::rng::Rng;
use crate::Request;

/// Published Table 1 statistics for a sub-task.
#[derive(Debug, Clone, PartialEq)]
pub struct SubTask {
    /// Sub-task name as reported in the paper.
    pub name: &'static str,
    /// Mean context tokens.
    pub context_mean: f64,
    /// Mean instruction tokens.
    pub input_mean: f64,
    /// Mean output tokens.
    pub output_mean: f64,
}

/// Paper Assistant sub-task (Table 1 row 1).
pub const PAPER_ASSISTANT: SubTask = SubTask {
    name: "Paper Assistant",
    context_mean: 10603.5,
    input_mean: 142.7,
    output_mean: 404.8,
};

/// GSM-100 few-shot math sub-task (Table 1 row 2).
pub const GSM_100: SubTask = SubTask {
    name: "GSM-100",
    context_mean: 5451.7,
    input_mean: 77.4,
    output_mean: 4.3,
};

/// QuALITY long-document QA sub-task (Table 1 row 3).
pub const QUALITY: SubTask = SubTask {
    name: "QuALITY",
    context_mean: 7053.9,
    input_mean: 92.4,
    output_mean: 19.2,
};

/// The 20-sub-task average (Table 1 row 4) — used for the "Mixed" bars of
/// Figure 10.
pub const LEVAL_AVG: SubTask = SubTask {
    name: "Mixed",
    context_mean: 16340.2,
    input_mean: 44.7,
    output_mean: 50.2,
};

/// The four rows of Table 1 / bar groups of Figure 10, in paper order.
pub fn table1_subtasks() -> Vec<SubTask> {
    vec![PAPER_ASSISTANT, GSM_100, QUALITY, LEVAL_AVG]
}

/// Generates `n` requests for a sub-task. Context lengths vary log-normally
/// around the published mean (σ=0.35 keeps the bimodal "long context, short
/// instruction" shape); each request reuses a distinct context
/// (`session_id` = request index) unless remapped by a popularity process
/// (see `zipf`).
pub fn generate_requests(task: &SubTask, n: usize, max_ctx: u32, seed: u64) -> Vec<Request> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|i| {
            let ctx = rng
                .lognormal_with_mean(task.context_mean, 0.35)
                .round()
                .clamp(64.0, max_ctx as f64) as u32;
            let input = rng
                .lognormal_with_mean(task.input_mean, 0.5)
                .round()
                .max(1.0) as u32;
            let output = rng
                .lognormal_with_mean(task.output_mean.max(1.0), 0.5)
                .round()
                .max(1.0) as u32;
            Request {
                session_id: i as u64,
                arrival: 0.0,
                history_tokens: ctx,
                input_tokens: input,
                output_tokens: output,
            }
        })
        .collect()
}

/// The "mixed" trace of Figure 10d: 200 requests sampled across sub-tasks
/// proportionally (the paper samples 200 requests from the full trace).
pub fn mixed_trace(n: usize, max_ctx: u32, seed: u64) -> Vec<Request> {
    generate_requests(&LEVAL_AVG, n, max_ctx, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::mean;

    #[test]
    fn table1_has_four_rows_in_paper_order() {
        let t = table1_subtasks();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].name, "Paper Assistant");
        assert_eq!(t[3].name, "Mixed");
    }

    #[test]
    fn generated_means_match_table1() {
        for task in table1_subtasks() {
            let reqs = generate_requests(&task, 4000, 32 * 1024, 11);
            let ctx = mean(
                &reqs
                    .iter()
                    .map(|r| r.history_tokens as f64)
                    .collect::<Vec<_>>(),
            );
            let rel = (ctx - task.context_mean).abs() / task.context_mean;
            assert!(
                rel < 0.1,
                "{}: ctx mean {ctx} vs {}",
                task.name,
                task.context_mean
            );
        }
    }

    #[test]
    fn bimodal_shape_context_much_longer_than_io() {
        // §2.3: contexts up to 16K, instructions/outputs below ~100.
        let reqs = generate_requests(&LEVAL_AVG, 1000, 32 * 1024, 5);
        let ctx = mean(
            &reqs
                .iter()
                .map(|r| r.history_tokens as f64)
                .collect::<Vec<_>>(),
        );
        let inp = mean(
            &reqs
                .iter()
                .map(|r| r.input_tokens as f64)
                .collect::<Vec<_>>(),
        );
        assert!(ctx / inp > 50.0, "ctx {ctx} vs input {inp}");
    }

    #[test]
    fn contexts_clamped_to_model_window() {
        let reqs = generate_requests(&LEVAL_AVG, 2000, 16 * 1024, 3);
        assert!(reqs.iter().all(|r| r.history_tokens <= 16 * 1024));
        assert!(reqs.iter().all(|r| r.history_tokens >= 64));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_requests(&QUALITY, 50, 16384, 1);
        let b = generate_requests(&QUALITY, 50, 16384, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn output_lengths_positive_even_for_tiny_means() {
        // GSM-100 mean output is 4.3; all outputs must still be >= 1.
        let reqs = generate_requests(&GSM_100, 500, 16384, 2);
        assert!(reqs.iter().all(|r| r.output_tokens >= 1));
    }
}
