//! # hc-workload
//!
//! Deterministic workload generation for the HCache reproduction.
//!
//! The paper evaluates with two real traces whose *statistics* it publishes:
//!
//! * **ShareGPT4** (multi-round conversations, §2.3 Fig 3): average round
//!   input 66.8 tokens, average output 358.8 tokens, history-length CDF with
//!   median ≈ 2.5K truncated at 16K.
//! * **L-Eval** (long-context tasks, Table 1): per-subtask context/input/
//!   output means (e.g. Paper Assistant 10603.5 / 142.7 / 404.8).
//!
//! We don't have the raw datasets offline, so this crate provides generators
//! matched to those published statistics, plus the arrival processes the
//! evaluation uses (Poisson session arrivals, fixed 30 s round intervals,
//! Zipf-α context popularity for §6.4). Everything is seeded and
//! deterministic.

pub mod arrival;
pub mod leval;
pub mod rng;
pub mod sharegpt;
pub mod stats;
pub mod tenant;
pub mod zipf;

/// A single inference request as the serving engine consumes it.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Session (conversation / context) this request belongs to.
    pub session_id: u64,
    /// Arrival time in seconds since simulation start.
    pub arrival: f64,
    /// Tokens of reusable history that must be live before prefill
    /// (0 for the first round).
    pub history_tokens: u32,
    /// New prompt tokens for this round.
    pub input_tokens: u32,
    /// Number of tokens the model will generate.
    pub output_tokens: u32,
}

impl Request {
    /// Context length after this request completes (becomes the next
    /// round's `history_tokens`).
    pub fn final_context(&self) -> u32 {
        self.history_tokens + self.input_tokens + self.output_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_context_accumulates() {
        let r = Request {
            session_id: 1,
            arrival: 0.0,
            history_tokens: 100,
            input_tokens: 10,
            output_tokens: 20,
        };
        assert_eq!(r.final_context(), 130);
    }
}
