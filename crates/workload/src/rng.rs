//! Deterministic pseudo-random generation and the distributions the trace
//! generators need. Implemented locally (xoshiro256**) so that workloads are
//! bit-reproducible across platforms and independent of external crate
//! version bumps.

/// xoshiro256** — fast, high-quality, deterministic.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator via SplitMix64 expansion of `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        // xoshiro must not be seeded all-zero; SplitMix64 guarantees that.
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi >= lo, "empty range");
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift; bias is negligible for our n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let mut u1 = self.uniform();
        if u1 < 1e-300 {
            u1 = 1e-300;
        }
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normal with the given parameters of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Log-normal parameterized by its *mean* and the sigma of the
    /// underlying normal (solves `mu` from `mean = exp(mu + sigma²/2)`).
    pub fn lognormal_with_mean(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(mean > 0.0, "lognormal mean must be positive");
        let mu = mean.ln() - sigma * sigma / 2.0;
        self.lognormal(mu, sigma)
    }

    /// Exponential with rate `lambda` (mean `1/lambda`) — Poisson
    /// inter-arrival times.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "rate must be positive");
        let mut u = self.uniform();
        if u < 1e-300 {
            u = 1e-300;
        }
        -u.ln() / lambda
    }

    /// Geometric: number of failures before the first success,
    /// `p` = success probability.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "p out of range");
        if p >= 1.0 {
            return 0;
        }
        let u = self.uniform().max(1e-300);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let mut c = Rng::new(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = Rng::new(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_covers_range_uniformly() {
        let mut r = Rng::new(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((8_000..12_000).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(4);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_with_mean_hits_target_mean() {
        let mut r = Rng::new(5);
        let target = 358.8;
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| r.lognormal_with_mean(target, 0.8))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - target).abs() / target < 0.05,
            "mean {mean} vs {target}"
        );
    }

    #[test]
    fn exponential_mean_is_reciprocal_rate() {
        let mut r = Rng::new(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn geometric_mean() {
        let mut r = Rng::new(7);
        let p = 0.25;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.geometric(p) as f64).sum::<f64>() / n as f64;
        // E[failures] = (1-p)/p = 3.
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }
}
