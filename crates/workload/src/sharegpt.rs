//! ShareGPT4-like multi-round conversation generator.
//!
//! Matched to the statistics the paper reports in §2.3 / Figure 3:
//! * average new-prompt length per round: **66.8** tokens,
//! * average output length per round: **358.8** tokens,
//! * history length CDF: median above **2.5K** tokens, truncated at **16K**.
//!
//! Sessions have a heavy-tailed number of rounds so that history lengths
//! accumulate into the published CDF shape.

use crate::rng::Rng;
use crate::Request;

/// Mean new-prompt tokens per round (Fig 3a).
pub const MEAN_INPUT_TOKENS: f64 = 66.8;
/// Mean output tokens per round (Fig 3a).
pub const MEAN_OUTPUT_TOKENS: f64 = 358.8;
/// History truncation used by the paper's CDF plot and our generator.
pub const MAX_HISTORY_TOKENS: u32 = 16 * 1024;

/// Configuration of the conversation generator.
#[derive(Debug, Clone)]
pub struct ShareGptConfig {
    /// Mean rounds per session (heavy-tailed around this).
    pub mean_rounds: f64,
    /// Sigma of the log-normal length distributions.
    pub length_sigma: f64,
    /// Think time between a response finishing and the next round arriving
    /// (the paper fixes 30 s in §6.1.1).
    pub round_interval_secs: f64,
}

impl Default for ShareGptConfig {
    fn default() -> Self {
        Self {
            mean_rounds: 8.0,
            length_sigma: 0.85,
            round_interval_secs: 30.0,
        }
    }
}

/// One conversation: a sequence of rounds sharing accumulated history.
#[derive(Debug, Clone)]
pub struct Session {
    /// Stable identifier.
    pub id: u64,
    /// Rounds in order; `history_tokens` accumulates across rounds and the
    /// relative `arrival` encodes the 30 s round interval (absolute session
    /// start time is assigned by the arrival process).
    pub rounds: Vec<Request>,
}

/// Generates `n_sessions` conversations with deterministic content.
pub fn generate_sessions(n_sessions: usize, cfg: &ShareGptConfig, seed: u64) -> Vec<Session> {
    let mut rng = Rng::new(seed);
    let mut sessions = Vec::with_capacity(n_sessions);
    for id in 0..n_sessions as u64 {
        // 1 + geometric gives >= 1 round with mean cfg.mean_rounds.
        let p = 1.0 / cfg.mean_rounds.max(1.0);
        let n_rounds = 1 + rng.geometric(p) as usize;
        let mut rounds = Vec::with_capacity(n_rounds);
        let mut history: u32 = 0;
        let mut t = 0.0;
        for _ in 0..n_rounds {
            let input = rng
                .lognormal_with_mean(MEAN_INPUT_TOKENS, cfg.length_sigma)
                .round()
                .max(1.0) as u32;
            let output = rng
                .lognormal_with_mean(MEAN_OUTPUT_TOKENS, cfg.length_sigma)
                .round()
                .max(1.0) as u32;
            let req = Request {
                session_id: id,
                arrival: t,
                history_tokens: history,
                input_tokens: input,
                output_tokens: output,
            };
            if req.final_context() > MAX_HISTORY_TOKENS {
                // The serving context window is full — the conversation
                // ends (matching the paper's 16K truncation).
                break;
            }
            history = req.final_context();
            rounds.push(req);
            t += cfg.round_interval_secs;
        }
        sessions.push(Session { id, rounds });
    }
    sessions
}

/// Flattens sessions into requests (relative arrival times preserved).
pub fn all_requests(sessions: &[Session]) -> Vec<Request> {
    sessions.iter().flat_map(|s| s.rounds.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, median};

    fn big_trace() -> Vec<Session> {
        generate_sessions(3000, &ShareGptConfig::default(), 7)
    }

    #[test]
    fn deterministic() {
        let a = generate_sessions(10, &ShareGptConfig::default(), 1);
        let b = generate_sessions(10, &ShareGptConfig::default(), 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.rounds, y.rounds);
        }
    }

    #[test]
    fn mean_lengths_match_paper_fig3a() {
        let reqs = all_requests(&big_trace());
        let inputs: Vec<f64> = reqs.iter().map(|r| r.input_tokens as f64).collect();
        let outputs: Vec<f64> = reqs.iter().map(|r| r.output_tokens as f64).collect();
        let mi = mean(&inputs);
        let mo = mean(&outputs);
        assert!(
            (mi - MEAN_INPUT_TOKENS).abs() / MEAN_INPUT_TOKENS < 0.1,
            "mean input {mi}"
        );
        assert!(
            (mo - MEAN_OUTPUT_TOKENS).abs() / MEAN_OUTPUT_TOKENS < 0.1,
            "mean output {mo}"
        );
    }

    #[test]
    fn history_cdf_matches_paper_fig3b() {
        // Paper: "the length of half of the conversations is over 2.5K".
        // Measure the history length at each session's *last* round.
        let sessions = big_trace();
        let final_hist: Vec<f64> = sessions
            .iter()
            .filter(|s| !s.rounds.is_empty())
            .map(|s| s.rounds.last().unwrap().final_context() as f64)
            .collect();
        let med = median(&final_hist);
        assert!(
            med > 2000.0 && med < 6000.0,
            "median session history {med}, want ≈2.5K+"
        );
    }

    #[test]
    fn history_accumulates_monotonically() {
        for s in generate_sessions(50, &ShareGptConfig::default(), 3) {
            let mut prev_ctx = 0u32;
            for (i, r) in s.rounds.iter().enumerate() {
                assert_eq!(
                    r.history_tokens, prev_ctx,
                    "round {i} history must equal previous context"
                );
                prev_ctx = r.final_context();
            }
        }
    }

    #[test]
    fn history_respects_truncation() {
        for s in big_trace() {
            for r in &s.rounds {
                assert!(r.final_context() <= MAX_HISTORY_TOKENS);
            }
        }
    }

    #[test]
    fn round_interval_is_30s() {
        let s = &generate_sessions(5, &ShareGptConfig::default(), 9)[0];
        for (i, r) in s.rounds.iter().enumerate() {
            assert_eq!(r.arrival, 30.0 * i as f64);
        }
    }

    #[test]
    fn every_session_has_at_least_one_round() {
        assert!(big_trace().iter().all(|s| !s.rounds.is_empty()));
    }
}
