//! Summary-statistics helpers used by generators, tests and the experiment
//! harness (means, percentiles, CDF sampling, histograms).

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// # Panics
/// Panics on empty input or out-of-range `p`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (p50).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Empirical CDF evaluated at `x`: fraction of samples `<= x`.
pub fn cdf_at(xs: &[f64], x: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&v| v <= x).count() as f64 / xs.len() as f64
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets; values outside
/// the range clamp into the edge buckets.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<u64> {
    assert!(bins > 0 && hi > lo, "bad histogram spec");
    let mut h = vec![0u64; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let idx = ((x - lo) / width).floor();
        let idx = idx.clamp(0.0, (bins - 1) as f64) as usize;
        h[idx] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 25.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn cdf_monotone() {
        let xs = [1.0, 2.0, 2.0, 8.0];
        assert_eq!(cdf_at(&xs, 0.0), 0.0);
        assert_eq!(cdf_at(&xs, 2.0), 0.75);
        assert_eq!(cdf_at(&xs, 10.0), 1.0);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [-1.0, 0.5, 1.5, 2.5, 99.0];
        let h = histogram(&xs, 0.0, 3.0, 3);
        assert_eq!(h, vec![2, 1, 2]); // -1 clamps low, 99 clamps high
        assert_eq!(h.iter().sum::<u64>() as usize, xs.len());
    }
}
