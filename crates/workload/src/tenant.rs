//! Deterministic multi-tenant control-plane traces.
//!
//! The million-session controller (`hc-cachectl`) enforces per-tenant
//! byte quotas; exercising it needs a workload where tenants contend at
//! very different intensities. This module composes the two primitives
//! the evaluation already uses — **Zipf popularity** ([`crate::zipf`])
//! and **Poisson arrivals** ([`crate::arrival`]) — into a per-tenant
//! product: tenant `t` receives its own Poisson session-arrival process
//! whose rate is the aggregate rate scaled by the Zipf mass of rank `t`,
//! so tenant 0 is the hot tenant and the tail idles, with the skew set
//! by `alpha`. Each arriving session then plays a fixed-interval round
//! loop (open → save per round, history growing by `tokens_per_round` —
//! ShareGPT's 30 s cadence by default) and optionally closes.
//!
//! Everything is seeded through [`crate::rng::Rng`]: per-tenant streams
//! use `seed ⊕ splitmix`-derived sub-seeds, so the trace for a given
//! config is bit-identical across runs and platforms, and session ids
//! are assigned by global arrival order (ties by tenant) so two replays
//! agree on every id.

use crate::arrival::poisson_arrivals;
use crate::rng::Rng;
use crate::zipf::Zipf;

/// What a trace op does to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantOpKind {
    /// Admit the session (controller `open_session_in`).
    Open,
    /// A round completed: the session's state was saved and flushed;
    /// reconcile at the new total history length (controller `on_saved`).
    Save {
        /// Total history tokens after this round.
        n_tokens: u64,
    },
    /// The session ended; delete its state (controller `close_session`).
    Close,
}

/// One timed controller op of a multi-tenant trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantOp {
    /// Seconds since trace start.
    pub time: f64,
    /// Owning tenant (Zipf rank: 0 = hottest).
    pub tenant: u32,
    /// Session id, unique across tenants.
    pub session: u64,
    /// The op.
    pub kind: TenantOpKind,
}

/// Trace-generator tunables.
#[derive(Debug, Clone)]
pub struct TenantTraceConfig {
    /// Number of tenants (Zipf support).
    pub n_tenants: usize,
    /// Zipf skew across tenants (0 = uniform).
    pub alpha: f64,
    /// Aggregate session arrival rate, sessions/second, split across
    /// tenants by Zipf mass.
    pub rate: f64,
    /// Trace length in seconds; sessions arriving later are dropped.
    pub horizon: f64,
    /// Rounds per session are uniform in `[1, max_rounds]`.
    pub max_rounds: u32,
    /// Seconds between a session's rounds.
    pub round_interval: f64,
    /// History growth per round in tokens.
    pub tokens_per_round: u64,
    /// Fraction of sessions that close after their last round (the rest
    /// stay resident, keeping pool pressure up).
    pub close_fraction: f64,
    /// Master seed; every derived stream is a pure function of it.
    pub seed: u64,
}

impl Default for TenantTraceConfig {
    fn default() -> Self {
        Self {
            n_tenants: 4,
            alpha: 1.2,
            rate: 2.0,
            horizon: 600.0,
            max_rounds: 4,
            round_interval: 30.0,
            tokens_per_round: 64,
            close_fraction: 0.25,
            seed: 0,
        }
    }
}

/// SplitMix64-style mix for deriving independent per-tenant sub-seeds.
fn sub_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates the timed op stream: per-tenant Poisson session arrivals at
/// Zipf-scaled rates, each session contributing an `Open`, one `Save`
/// per round with cumulative history, and (for a deterministic subset) a
/// `Close`. Ops are sorted by time (ties by session id, then op order),
/// and session ids are dense `0..n_sessions` in arrival order.
pub fn generate_tenant_trace(cfg: &TenantTraceConfig) -> Vec<TenantOp> {
    assert!(cfg.n_tenants > 0, "no tenants");
    assert!(cfg.max_rounds >= 1, "sessions need at least one round");
    assert!(
        (0.0..=1.0).contains(&cfg.close_fraction),
        "close_fraction out of range"
    );
    let zipf = Zipf::new(cfg.n_tenants, cfg.alpha);
    // Per-tenant Poisson arrival streams at Zipf-scaled rates.
    let mut arrivals: Vec<(f64, u32)> = Vec::new();
    for t in 0..cfg.n_tenants {
        let rate = cfg.rate * zipf.pmf(t);
        if rate <= 0.0 {
            continue;
        }
        let ts = poisson_arrivals(rate, cfg.horizon, sub_seed(cfg.seed, t as u64 + 1));
        arrivals.extend(ts.into_iter().map(|at| (at, t as u32)));
    }
    // Global arrival order fixes the session id assignment.
    arrivals.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

    let mut ops = Vec::new();
    for (session, (start, tenant)) in arrivals.iter().enumerate() {
        let session = session as u64;
        let mut rng = Rng::new(sub_seed(cfg.seed, 0x5e55_0000 + session));
        let rounds = 1 + rng.below(cfg.max_rounds as u64) as u32;
        let closes = rng.uniform() < cfg.close_fraction;
        ops.push(TenantOp {
            time: *start,
            tenant: *tenant,
            session,
            kind: TenantOpKind::Open,
        });
        let mut last = *start;
        for round in 1..=rounds {
            last = start + round as f64 * cfg.round_interval;
            ops.push(TenantOp {
                time: last,
                tenant: *tenant,
                session,
                kind: TenantOpKind::Save {
                    n_tokens: round as u64 * cfg.tokens_per_round,
                },
            });
        }
        if closes {
            ops.push(TenantOp {
                time: last + cfg.round_interval,
                tenant: *tenant,
                session,
                kind: TenantOpKind::Close,
            });
        }
    }
    // Stable per-session op order under time ties: Open < Save(asc) <
    // Close follows from each session's strictly increasing times, so
    // (time, session) is a total, deterministic order.
    ops.sort_by(|a, b| {
        a.time
            .total_cmp(&b.time)
            .then_with(|| a.session.cmp(&b.session))
    });
    ops
}

/// Sessions per tenant in a trace (index = tenant id).
pub fn sessions_per_tenant(ops: &[TenantOp], n_tenants: usize) -> Vec<u64> {
    let mut counts = vec![0u64; n_tenants];
    for op in ops {
        if op.kind == TenantOpKind::Open {
            counts[op.tenant as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TenantTraceConfig {
        TenantTraceConfig {
            n_tenants: 4,
            alpha: 1.4,
            rate: 1.0,
            horizon: 2_000.0,
            seed: 11,
            ..TenantTraceConfig::default()
        }
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let a = generate_tenant_trace(&cfg());
        let b = generate_tenant_trace(&cfg());
        assert_eq!(a, b);
        let c = generate_tenant_trace(&TenantTraceConfig { seed: 12, ..cfg() });
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn ops_are_time_sorted_and_sessions_well_formed() {
        let ops = generate_tenant_trace(&cfg());
        assert!(ops.windows(2).all(|w| w[0].time <= w[1].time));
        // Per session: exactly one Open first, Saves with strictly
        // growing history, at most one Close last.
        let n_sessions = ops.iter().filter(|o| o.kind == TenantOpKind::Open).count() as u64;
        for s in 0..n_sessions {
            let mine: Vec<&TenantOp> = ops.iter().filter(|o| o.session == s).collect();
            assert_eq!(mine[0].kind, TenantOpKind::Open, "session {s}");
            assert!(mine.iter().all(|o| o.tenant == mine[0].tenant));
            let mut prev = 0u64;
            for o in &mine[1..] {
                match o.kind {
                    TenantOpKind::Save { n_tokens } => {
                        assert!(n_tokens > prev, "history must grow");
                        prev = n_tokens;
                    }
                    TenantOpKind::Close => {
                        assert_eq!(o.session, mine.last().unwrap().session, "close is last");
                    }
                    TenantOpKind::Open => panic!("double open for {s}"),
                }
            }
        }
    }

    #[test]
    fn zipf_skew_concentrates_sessions_on_the_hot_tenant() {
        let ops = generate_tenant_trace(&TenantTraceConfig {
            horizon: 20_000.0,
            ..cfg()
        });
        let counts = sessions_per_tenant(&ops, 4);
        assert!(
            counts[0] > 2 * counts[3],
            "tenant 0 ({}) should dominate tenant 3 ({})",
            counts[0],
            counts[3]
        );
        // Rates follow the Zipf pmf within sampling noise.
        let total: u64 = counts.iter().sum();
        let z = Zipf::new(4, 1.4);
        for (t, &c) in counts.iter().enumerate() {
            let emp = c as f64 / total as f64;
            assert!(
                (emp - z.pmf(t)).abs() < 0.05,
                "tenant {t}: {emp} vs pmf {}",
                z.pmf(t)
            );
        }
    }

    #[test]
    fn uniform_alpha_spreads_sessions_evenly() {
        let ops = generate_tenant_trace(&TenantTraceConfig {
            alpha: 0.0,
            horizon: 20_000.0,
            ..cfg()
        });
        let counts = sessions_per_tenant(&ops, 4);
        let total: u64 = counts.iter().sum();
        for (t, &c) in counts.iter().enumerate() {
            let emp = c as f64 / total as f64;
            assert!((emp - 0.25).abs() < 0.05, "tenant {t}: {emp}");
        }
    }

    #[test]
    fn close_fraction_bounds_closes() {
        let all = generate_tenant_trace(&TenantTraceConfig {
            close_fraction: 1.0,
            ..cfg()
        });
        let opens = all.iter().filter(|o| o.kind == TenantOpKind::Open).count();
        let closes = all.iter().filter(|o| o.kind == TenantOpKind::Close).count();
        assert_eq!(opens, closes, "every session closes at fraction 1");
        let none = generate_tenant_trace(&TenantTraceConfig {
            close_fraction: 0.0,
            ..cfg()
        });
        assert!(none.iter().all(|o| o.kind != TenantOpKind::Close));
    }
}
