//! Zipfian popularity sampling for the GPU KV-reuse experiment (§6.4).
//!
//! The paper synthesizes context arrival patterns with Zipf skewness
//! α ∈ {uniform, 1.2 … 2.0}: a few hot contexts are requested repeatedly
//! while the tail is cold, which drives the LRU cache hit ratio of Fig 15.

use crate::rng::Rng;

/// A sampler over ranks `0..n` with `P(k) ∝ (k+1)^-alpha`.
/// `alpha == 0` degenerates to the uniform distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics when `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(alpha >= 0.0, "negative skew");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.uniform();
        // First index whose cdf >= u.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_concentrates_mass_on_head() {
        let z12 = Zipf::new(100, 1.2);
        let z20 = Zipf::new(100, 2.0);
        assert!(z20.pmf(0) > z12.pmf(0));
        assert!(z12.pmf(0) > Zipf::new(100, 0.0).pmf(0));
        // At alpha = 2 the head dominates: top-1 gets most of the mass.
        assert!(z20.pmf(0) > 0.5, "pmf(0) = {}", z20.pmf(0));
    }

    #[test]
    fn pmf_sums_to_one() {
        for alpha in [0.0, 0.8, 1.4, 2.0] {
            let z = Zipf::new(64, alpha);
            let sum: f64 = (0..64).map(|k| z.pmf(k)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "alpha {alpha}: sum {sum}");
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(20, 1.5);
        let mut rng = Rng::new(77);
        let n = 200_000;
        let mut counts = [0u64; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate().take(5) {
            let emp = count as f64 / n as f64;
            let rel = (emp - z.pmf(k)).abs() / z.pmf(k);
            assert!(rel < 0.05, "rank {k}: emp {emp} vs pmf {}", z.pmf(k));
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(7, 1.1);
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn empty_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
