//! Multi-round conversation (the paper's §2.3 chatbot scenario).
//!
//! Drives an [`hcache::HCacheSystem`] through a ShareGPT-style multi-round
//! conversation: every round restores the evicted history from hidden
//! states, prefills the new user prompt, generates a reply while the
//! two-stage saver persists new state in the background, and evicts again.
//! Uses a bubble-free mixed scheme (hidden + KV-offload layers) and prints
//! the storage economics against a pure KV-offload baseline.
//!
//! Run with: `cargo run --release --example multi_round_chat`

use hcache::model::ModelConfig;
use hcache::sched::partition::{LayerMethod, PartitionScheme};
use hcache::HCacheSystem;

fn main() {
    let cfg = ModelConfig::tiny_llama();
    // A miniature Table-3-style schedule: 3 layers via hidden states, 1 via
    // KV offload (as the bubble-free scheduler would pick on a
    // compute-lean platform).
    let scheme = PartitionScheme {
        l_h: 3,
        l_o: 1,
        complement: LayerMethod::KvOffload,
    };
    let mut sys = HCacheSystem::in_memory(&cfg, 2024, 4).with_scheme(scheme.clone());
    let sid = sys.open_session();

    println!("=== multi-round conversation (model {}) ===", cfg.name);
    let rounds: Vec<Vec<u32>> = vec![
        (0..24).map(|i| i * 3 % 256).collect(),
        (0..9).map(|i| (i * 11 + 40) % 256).collect(),
        (0..15).map(|i| (i * 7 + 90) % 256).collect(),
        (0..6).map(|i| (i * 13 + 1) % 256).collect(),
    ];
    for (i, prompt) in rounds.iter().enumerate() {
        let reply = sys.round(sid, prompt, 12).expect("round failed");
        let stats = sys.last_round_stats().unwrap().clone();
        println!(
            "round {}: restored {:>3} history tokens, prefilled {:>2}, generated {:>2} -> context {:>3}",
            i + 1,
            stats.restored_tokens,
            stats.prompt_tokens,
            stats.generated_tokens,
            stats.context_tokens
        );
        assert_eq!(reply.len(), 12);
    }

    // Verify the final context restores correctly after all that churn.
    let restored = sys.restore(sid).unwrap();
    assert!(restored.is_consistent());
    println!(
        "final restore: {} tokens across {} layers — consistent",
        restored.n_tokens(),
        restored.n_layers()
    );

    // Storage economics (Table 3): scheme cost vs full KV offload.
    let per_token = scheme.storage_bytes_per_token(cfg.d_model, cfg.elem_bytes);
    let kv_per_token = (cfg.kv_bytes_per_token()) as u64;
    println!(
        "storage: {} B/token with this scheme vs {} B/token for KV offload ({:.2}x saving)",
        per_token,
        kv_per_token,
        kv_per_token as f64 / per_token as f64
    );

    let io = sys.io_stats();
    println!(
        "backend IO: {} chunk writes / {} reads, {:.1} KiB written, spread over {} devices",
        io.total_writes(),
        io.total_reads(),
        io.total_bytes_written() as f64 / 1024.0,
        io.devices.len()
    );
    for (i, d) in io.devices.iter().enumerate() {
        println!(
            "  dev{i}: {:>4} writes {:>8} B | {:>4} reads {:>8} B",
            d.writes, d.bytes_written, d.reads, d.bytes_read
        );
    }
}
