//! Platform explorer: how the bubble-free scheduler adapts to hardware.
//!
//! Sweeps the paper's Table 2 GPUs and SSD counts for each evaluation
//! model, printing the restoration speed per method and the layer schedule
//! HCache picks (`L_H` hidden + `L_O` complementary) — a miniature of
//! Table 3 and Figure 11.
//!
//! Run with: `cargo run --release --example platform_explorer`

use hcache::model::ModelConfig;
use hcache::restore::sim::{hcache_scheme, simulate_restore};
use hcache::restore::RestoreMethod;
use hcache::sched::partition::LayerMethod;
use hcache::sched::shape_of;
use hcache::simhw::gpu::GpuSpec;
use hcache::simhw::platform::Platform;
use hcache::simhw::profile::PlatformProfile;

fn main() {
    let n_tokens = 1024u64;
    println!("restoration of a {n_tokens}-token history\n");

    println!("--- varying GPU (DRAM storage backend, cf. Fig 11a-c) ---");
    println!(
        "{:<12} {:<11} {:>12} {:>12} {:>12}  schedule",
        "model", "gpu", "recompute", "kv-offload", "hcache"
    );
    for cfg in [ModelConfig::llama2_7b(), ModelConfig::llama2_13b()] {
        for gpu in GpuSpec::table2() {
            let platform = Platform::dram_backed(gpu.clone(), 1);
            let profile = PlatformProfile::new(platform, shape_of(&cfg));
            let speeds: Vec<f64> = [
                RestoreMethod::Recompute,
                RestoreMethod::KvOffload,
                RestoreMethod::HCache,
            ]
            .iter()
            .map(|m| simulate_restore(&profile, *m, n_tokens).speed / 1e3)
            .collect();
            let scheme = hcache_scheme(&profile, n_tokens);
            let comp = match scheme.complement {
                LayerMethod::Hidden => "—",
                LayerMethod::KvOffload => "KV",
                LayerMethod::Recompute => "RE",
            };
            println!(
                "{:<12} {:<11} {:>9.1}K/s {:>9.1}K/s {:>9.1}K/s  {} H + {} {}",
                cfg.name, gpu.name, speeds[0], speeds[1], speeds[2], scheme.l_h, scheme.l_o, comp
            );
        }
        println!();
    }

    println!("--- varying SSD count (A100, cf. Fig 11d-f) ---");
    println!(
        "{:<12} {:<8} {:>12} {:>12} {:>12}  hcache-vs-kv",
        "model", "ssds", "recompute", "kv-offload", "hcache"
    );
    for cfg in [ModelConfig::llama2_7b(), ModelConfig::llama2_13b()] {
        for ssds in [1usize, 2, 3, 4] {
            let profile = PlatformProfile::new(Platform::a100_with_ssds(1, ssds), shape_of(&cfg));
            let rec = simulate_restore(&profile, RestoreMethod::Recompute, n_tokens).speed;
            let kv = simulate_restore(&profile, RestoreMethod::KvOffload, n_tokens).speed;
            let hc = simulate_restore(&profile, RestoreMethod::HCache, n_tokens).speed;
            println!(
                "{:<12} {:<8} {:>9.1}K/s {:>9.1}K/s {:>9.1}K/s  {:>10.2}x",
                cfg.name,
                ssds,
                rec / 1e3,
                kv / 1e3,
                hc / 1e3,
                hc / kv
            );
        }
        println!();
    }

    println!("--- per-token storage cost (cf. Table 3) ---");
    for cfg in ModelConfig::paper_models() {
        let platform = if cfg.name == "OPT-30B" {
            Platform::default_testbed_tp4()
        } else {
            Platform::default_testbed_single_gpu()
        };
        let profile = PlatformProfile::new(platform, shape_of(&cfg));
        let scheme = hcache_scheme(&profile, n_tokens);
        let hc_cost = scheme.storage_bytes_per_token(cfg.d_model, cfg.elem_bytes);
        let kv_cost = cfg.kv_bytes_per_token() as u64;
        println!(
            "{:<12} schedule {:>2} H + {:>2} {:?}: {:>4} KiB/token vs {:>4} KiB/token KV ({:.2}x)",
            cfg.name,
            scheme.l_h,
            scheme.l_o,
            scheme.complement,
            hc_cost / 1024,
            kv_cost / 1024,
            kv_cost as f64 / hc_cost as f64
        );
    }
}
