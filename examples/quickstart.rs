//! Quickstart: the core HCache idea in ~60 lines.
//!
//! 1. Prefill a prompt, capturing per-layer hidden states.
//! 2. Save the hidden states to (chunked, striped) host storage and evict
//!    the KV cache.
//! 3. Restore the KV cache from hidden states with one projection per layer
//!    and verify it matches the never-evicted cache.
//!
//! Run with: `cargo run --release --example quickstart`

use hcache::model::{KvCache, Model, ModelConfig};
use hcache::restore::engine::{kv_max_error, restore_session, save_session_state};
use hcache::sched::partition::PartitionScheme;
use hcache::storage::backend::MemStore;
use hcache::storage::manager::StorageManager;
use std::sync::Arc;

fn main() {
    // A reduced-scale Llama-style model (same structure as Llama2-7B).
    let cfg = ModelConfig::tiny_llama();
    let model = Model::new(&cfg, 42);
    println!(
        "model: {} ({} layers, d_model {}, {} heads)",
        cfg.name, cfg.n_layers, cfg.d_model, cfg.n_heads
    );

    // Chunked storage striped over 4 virtual SSDs (§4.2.1).
    let mgr = StorageManager::new(Arc::new(MemStore::new(4)), cfg.d_model);

    // --- Prefill a 100-token "conversation history" -----------------------
    let history: Vec<u32> = (0..100u32).map(|i| (i * 31 + 7) % 256).collect();
    let mut kv = KvCache::new(&cfg);
    let out = model.prefill(&history, &mut kv, /*capture_hidden=*/ true);
    let hidden = out.hidden_per_layer.expect("capture enabled");
    println!(
        "prefilled {} tokens; KV cache = {} KiB, hidden states = {} KiB (half!)",
        kv.n_tokens(),
        kv.size_bytes(cfg.elem_bytes) / 1024,
        hidden
            .iter()
            .map(|h| h.len() * cfg.elem_bytes)
            .sum::<usize>()
            / 1024,
    );

    // --- Save hidden states, then "evict" the KV cache --------------------
    let scheme = PartitionScheme::pure_hidden(cfg.n_layers);
    save_session_state(&model, &mgr, /*session=*/ 1, &hidden, &kv, &scheme).unwrap();
    let reference = kv; // keep for comparison; a real engine would drop it
    println!(
        "saved: {} chunk writes, {} KiB to storage",
        mgr.stats().total_writes(),
        mgr.stats().total_bytes_written() / 1024
    );

    // --- Restore: one GEMM per layer instead of a full prefill ------------
    let restored = restore_session(&model, &mgr, 1, &history, history.len(), &scheme).unwrap();
    let err = kv_max_error(&restored, &reference);
    println!(
        "restored {} tokens; max |Δ| vs never-evicted cache = {err:.2e} (fp16 storage)",
        restored.n_tokens()
    );
    assert!(err < 0.05, "restoration must be (near-)lossless");

    // --- Prove generation continues identically ---------------------------
    let mut kv_a = reference;
    let mut kv_b = restored;
    let (row_a, _) = model.decode_step(42, &mut kv_a, false);
    let (row_b, _) = model.decode_step(42, &mut kv_b, false);
    let next_a = model.greedy_next_token(&row_a);
    let next_b = model.greedy_next_token(&row_b);
    println!("next token (never evicted) = {next_a}, next token (restored) = {next_b}");
    assert_eq!(next_a, next_b);
    println!("OK: HCache restoration is lossless end to end.");
}
