//! RAG / long-context scenario (§2.3): contexts are ingested **offline**,
//! their hidden states saved; queries later attach to a context, restore
//! it, and answer with a short generation.
//!
//! Also reports what restoration would cost on the paper's real testbed
//! (A100 + 4×PM9A3) for an L-Eval-sized context, per method, using the
//! calibrated timing models.
//!
//! Run with: `cargo run --release --example rag_long_context`

use hcache::model::{KvCache, Model, ModelConfig};
use hcache::restore::engine::{restore_session, save_session_state};
use hcache::restore::sim::simulate_restore;
use hcache::restore::RestoreMethod;
use hcache::sched::partition::PartitionScheme;
use hcache::sched::shape_of;
use hcache::simhw::platform::Platform;
use hcache::simhw::profile::PlatformProfile;
use hcache::storage::backend::MemStore;
use hcache::storage::manager::StorageManager;
use hcache::workload::leval;
use std::sync::Arc;

fn main() {
    // ------------------------------------------------------------------
    // Functional part: offline ingestion + online queries at test scale.
    // ------------------------------------------------------------------
    let cfg = ModelConfig::tiny_llama();
    let model = Model::new(&cfg, 7);
    let mgr = StorageManager::new(Arc::new(MemStore::new(4)), cfg.d_model);
    let scheme = PartitionScheme::pure_hidden(cfg.n_layers);

    println!("=== offline context ingestion ===");
    let mut corpora: Vec<(u64, Vec<u32>)> = Vec::new();
    for doc in 0..3u64 {
        // Each "document" is a distinct long token sequence.
        let tokens: Vec<u32> = (0..150u32)
            .map(|i| (i * 17 + doc as u32 * 59) % 256)
            .collect();
        let mut kv = KvCache::new(&cfg);
        let out = model.prefill(&tokens, &mut kv, true);
        save_session_state(
            &model,
            &mgr,
            doc,
            &out.hidden_per_layer.unwrap(),
            &kv,
            &scheme,
        )
        .unwrap();
        println!("  ingested document {doc}: {} tokens", tokens.len());
        corpora.push((doc, tokens));
    }

    println!("=== online queries (restore + answer) ===");
    let query_targets = [1usize, 0, 2, 1]; // documents hit by each query
    for (q, &doc_idx) in query_targets.iter().enumerate() {
        let (doc, tokens) = &corpora[doc_idx];
        let doc = *doc;
        // Restore the document's KV cache from hidden states.
        let mut kv = restore_session(&model, &mgr, doc, tokens, tokens.len(), &scheme).unwrap();
        // Short question on top of the restored context.
        let question: Vec<u32> = (0..8u32).map(|i| (i * 5 + q as u32) % 256).collect();
        let out = model.prefill(&question, &mut kv, false);
        let mut last = out.final_hidden.row(question.len() - 1).to_vec();
        let mut answer = Vec::new();
        for _ in 0..6 {
            let t = model.greedy_next_token(&last);
            let (row, _) = model.decode_step(t, &mut kv, false);
            answer.push(t);
            last = row;
        }
        println!(
            "  query {q} on doc {doc}: restored {} ctx tokens, answer = {answer:?}",
            tokens.len()
        );
    }

    // ------------------------------------------------------------------
    // Timed part: what this costs at paper scale on the real testbed.
    // ------------------------------------------------------------------
    println!("=== projected restoration cost, Llama2-7B on A100 + 4xPM9A3 ===");
    let profile = PlatformProfile::new(
        Platform::default_testbed_single_gpu(),
        shape_of(&ModelConfig::llama2_7b()),
    );
    let task = leval::PAPER_ASSISTANT;
    let ctx = task.context_mean as u64;
    println!("  context: {} (~{} tokens)", task.name, ctx);
    for method in [
        RestoreMethod::Recompute,
        RestoreMethod::KvOffload,
        RestoreMethod::HCache,
    ] {
        let r = simulate_restore(&profile, method, ctx);
        println!(
            "  {:<14} {:>8.1} ms  ({:>6.1}K tokens/s)",
            r.method.name(),
            r.secs * 1e3,
            r.speed / 1e3
        );
    }
}
