//! End-to-end tests of the capacity control plane (`hc-cachectl`): the
//! ISSUE-2 acceptance matrix. Under any quota and eviction policy, every
//! restored `KvCache` must be **bit-identical to the sequential restore of
//! the session's surviving method mix** — eviction demotes, it never
//! corrupts — and stay within f16 tolerance of a fresh replay of the
//! conversation (layers demoted to recompute are bit-exact).

use std::sync::Arc;

use hc_cachectl::policy::PolicyKind;
use hc_cachectl::scheduler::{RestoreJob, RestoreScheduler};
use hc_cachectl::{CacheController, ControllerConfig};
use hc_model::{KvCache, Model, ModelConfig};
use hc_restore::engine::{kv_max_error, restore_session_with_methods, save_session_state};
use hc_sched::partition::{LayerMethod, PartitionScheme};
use hc_storage::backend::MemStore;
use hc_storage::manager::StorageManager;
use hc_tensor::ParallelConfig;
use hcache::HCacheSystem;

fn scheme_mixes(n_layers: usize) -> Vec<PartitionScheme> {
    vec![
        PartitionScheme::pure_hidden(n_layers),
        PartitionScheme {
            l_h: n_layers - 1,
            l_o: 1,
            complement: LayerMethod::KvOffload,
        },
        PartitionScheme {
            l_h: n_layers - 1,
            l_o: 1,
            complement: LayerMethod::Recompute,
        },
    ]
}

/// The acceptance criterion, across scheme mixes × policies × quotas:
/// drive multi-round sessions through a quota-governed `HCacheSystem`,
/// then check every session's restored cache against the sequential
/// methods-based restore (bit-identical) and a fresh replay (f16-bounded).
#[test]
fn restores_are_bit_identical_to_sequential_under_any_quota_and_policy() {
    let cfg = ModelConfig::tiny_llama();
    let tight = 3 * 64 * 64 * 2; // three D=64 chunks: forces demotions
    for scheme in scheme_mixes(cfg.n_layers) {
        for policy in [PolicyKind::Lru, PolicyKind::CostAware] {
            for quota in [u64::MAX, tight] {
                let mut sys = HCacheSystem::with_store_parallel(
                    &cfg,
                    17,
                    Arc::new(MemStore::new(2)),
                    scheme.clone(),
                    ParallelConfig::new(2),
                )
                .with_cache_controller(
                    ControllerConfig::with_quota(quota)
                        .with_policy(policy)
                        .with_expected_tokens(16),
                );
                let mut sids = Vec::new();
                for i in 0..3u32 {
                    let sid = sys.open_session();
                    let prompt: Vec<u32> = (0..18).map(|j| (i * 18 + j) % 256).collect();
                    sys.round(sid, &prompt, 4).unwrap();
                    sys.round(sid, &[i, i + 1], 3).unwrap();
                    sids.push(sid);
                }
                let ctl = sys.controller().unwrap();
                assert!(
                    ctl.used_bytes() <= quota,
                    "quota violated: scheme {scheme:?} policy {policy:?}"
                );
                if quota == tight {
                    assert!(
                        ctl.metrics().demotions > 0,
                        "tight quota must demote: scheme {scheme:?} policy {policy:?}"
                    );
                }
                for &sid in &sids {
                    let methods = ctl.session_methods(sid).unwrap();
                    let tokens = sys.session_tokens(sid).unwrap().to_vec();
                    let restored = sys.restore(sid).unwrap();
                    assert_eq!(restored.n_tokens(), tokens.len());
                    let seq = restore_session_with_methods(
                        sys.model(),
                        ctl.mgr(),
                        sid,
                        &tokens,
                        tokens.len(),
                        &methods,
                    )
                    .unwrap();
                    assert_eq!(
                        kv_max_error(&restored, &seq),
                        0.0,
                        "controller restore diverged: scheme {scheme:?} policy {policy:?} quota {quota}"
                    );
                    // Fresh-replay reference: demotions must not push the
                    // cache beyond f16 storage noise.
                    let model = Model::new(&cfg, 17);
                    let mut reference = KvCache::new(&cfg);
                    model.prefill(&tokens, &mut reference, false);
                    let err = kv_max_error(&restored, &reference);
                    assert!(
                        err < 0.05,
                        "restored cache deviates ({err}): scheme {scheme:?} policy {policy:?}"
                    );
                }
            }
        }
    }
}

/// Concurrent scheduling never changes results: N workers over one shared
/// budget produce bit-identical caches to one-at-a-time restores, for
/// every mix, and aggregate work completes for every worker count.
#[test]
fn restore_scheduler_is_bit_identical_to_sequential_at_any_worker_count() {
    let cfg = ModelConfig::tiny_llama();
    let model = Model::new(&cfg, 23);
    let mgr = Arc::new(StorageManager::new(Arc::new(MemStore::new(4)), cfg.d_model));
    let ctl = CacheController::new(
        Arc::clone(&mgr),
        cfg.n_layers,
        cfg.d_model,
        ControllerConfig::unlimited(),
    );
    let scheme = PartitionScheme {
        l_h: 3,
        l_o: 1,
        complement: LayerMethod::KvOffload,
    };
    const N_TOKENS: usize = 80;
    let mut jobs = Vec::new();
    let mut references = Vec::new();
    for s in 1..=6u64 {
        let methods = ctl.open_session(s, &scheme);
        let tokens: Vec<u32> = (0..N_TOKENS as u32)
            .map(|i| (i * 11 + s as u32 * 7) % 256)
            .collect();
        let mut kv = KvCache::new(&cfg);
        let out = model.prefill(&tokens, &mut kv, true);
        save_session_state(
            &model,
            &mgr,
            s,
            &out.hidden_per_layer.unwrap(),
            &kv,
            &scheme,
        )
        .unwrap();
        ctl.on_saved(s, N_TOKENS as u64).unwrap();
        let seq =
            restore_session_with_methods(&model, &mgr, s, &tokens, N_TOKENS, &methods).unwrap();
        jobs.push(RestoreJob { session: s, tokens });
        references.push(seq);
    }
    for workers in [1usize, 2, 4] {
        let sched = RestoreScheduler::new(workers, ParallelConfig::new(4));
        let results = sched.run(&model, &ctl, &jobs);
        assert_eq!(results.len(), jobs.len());
        for (i, (session, result)) in results.into_iter().enumerate() {
            assert_eq!(session, jobs[i].session, "order preserved");
            let kv = result.unwrap();
            assert_eq!(
                kv_max_error(&kv, &references[i]),
                0.0,
                "session {session} diverged at {workers} workers"
            );
        }
    }
    // Every scheduled restore was a hit.
    assert_eq!(ctl.metrics().restore_hits as usize, 3 * jobs.len());
}

/// A prefetch-stage panic (buggy backend under exactly one session's
/// stream) fails that one scheduled job with the typed
/// `CtlError::Prefetch { layer }` — the scheduler's workers survive and
/// every healthy session still restores bit-identically.
#[test]
fn restore_scheduler_fails_one_job_on_prefetch_panic_without_tearing_down() {
    use hc_storage::backend::{ChunkStore, StoreStats};
    use hc_storage::chunk::ChunkKey;
    use hc_storage::StreamId;

    /// MemStore that panics on reads of one poisoned (session, layer).
    struct PanicStore {
        inner: MemStore,
        poison_session: u64,
        poison_layer: u32,
    }

    impl ChunkStore for PanicStore {
        fn write_chunk(&self, key: ChunkKey, data: &[u8]) -> Result<(), hc_storage::StorageError> {
            self.inner.write_chunk(key, data)
        }
        fn read_chunk(&self, key: ChunkKey) -> Result<Vec<u8>, hc_storage::StorageError> {
            assert!(
                !(key.stream.session == self.poison_session
                    && key.stream.layer == self.poison_layer),
                "poisoned chunk read"
            );
            self.inner.read_chunk(key)
        }
        fn contains(&self, key: ChunkKey) -> bool {
            self.inner.contains(key)
        }
        fn delete_stream(&self, stream: StreamId) -> u64 {
            self.inner.delete_stream(stream)
        }
        fn n_devices(&self) -> usize {
            self.inner.n_devices()
        }
        fn stats(&self) -> StoreStats {
            self.inner.stats()
        }
    }

    let cfg = ModelConfig::tiny_llama();
    let model = Model::new(&cfg, 31);
    let store = Arc::new(PanicStore {
        inner: MemStore::new(4),
        poison_session: 2,
        poison_layer: 1,
    });
    let mgr = Arc::new(StorageManager::new(store, cfg.d_model));
    let ctl = CacheController::new(
        Arc::clone(&mgr),
        cfg.n_layers,
        cfg.d_model,
        ControllerConfig::unlimited(),
    );
    let scheme = PartitionScheme::pure_hidden(cfg.n_layers);
    const N_TOKENS: usize = 70;
    let mut jobs = Vec::new();
    let mut references = std::collections::HashMap::new();
    for s in 1..=3u64 {
        let methods = ctl.open_session(s, &scheme);
        let tokens: Vec<u32> = (0..N_TOKENS as u32)
            .map(|i| (i * 13 + s as u32) % 256)
            .collect();
        let mut kv = KvCache::new(&cfg);
        let out = model.prefill(&tokens, &mut kv, true);
        save_session_state(
            &model,
            &mgr,
            s,
            &out.hidden_per_layer.unwrap(),
            &kv,
            &scheme,
        )
        .unwrap();
        ctl.on_saved(s, N_TOKENS as u64).unwrap();
        if s != 2 {
            let seq =
                restore_session_with_methods(&model, &mgr, s, &tokens, N_TOKENS, &methods).unwrap();
            references.insert(s, seq);
        }
        jobs.push(RestoreJob { session: s, tokens });
    }

    let sched = RestoreScheduler::new(2, ParallelConfig::new(4));
    let results = sched.run(&model, &ctl, &jobs);
    assert_eq!(results.len(), 3);
    for (session, result) in results {
        if session == 2 {
            assert!(
                matches!(result, Err(hc_cachectl::CtlError::Prefetch { layer: 1 })),
                "poisoned session must fail with the typed prefetch error"
            );
        } else {
            let kv = result.unwrap();
            assert_eq!(
                kv_max_error(&kv, &references[&session]),
                0.0,
                "healthy session {session} must survive the sibling's panic"
            );
        }
    }
}

/// The scheduler consumes `workload::arrival` traces: requests sorted by
/// Poisson arrival drive restores in arrival order; sessions without
/// history are skipped, unknown sessions surface errors.
#[test]
fn restore_scheduler_drains_an_arrival_trace() {
    use hc_workload::arrival::poisson_arrivals;
    use hc_workload::Request;

    let cfg = ModelConfig::tiny_llama();
    let model = Model::new(&cfg, 29);
    let mgr = Arc::new(StorageManager::new(Arc::new(MemStore::new(2)), cfg.d_model));
    let ctl = CacheController::new(
        Arc::clone(&mgr),
        cfg.n_layers,
        cfg.d_model,
        ControllerConfig::unlimited(),
    );
    let scheme = PartitionScheme::pure_hidden(cfg.n_layers);
    const N_TOKENS: usize = 70;
    let mut token_map = std::collections::HashMap::new();
    for s in 1..=4u64 {
        ctl.open_session(s, &scheme);
        let tokens: Vec<u32> = (0..N_TOKENS as u32)
            .map(|i| (i * 3 + s as u32) % 256)
            .collect();
        let mut kv = KvCache::new(&cfg);
        let out = model.prefill(&tokens, &mut kv, true);
        save_session_state(
            &model,
            &mgr,
            s,
            &out.hidden_per_layer.unwrap(),
            &kv,
            &scheme,
        )
        .unwrap();
        ctl.on_saved(s, N_TOKENS as u64).unwrap();
        token_map.insert(s, tokens);
    }
    let arrivals = poisson_arrivals(1.0, 1000.0, 3);
    let mut requests: Vec<Request> = (1..=4u64)
        .map(|s| Request {
            session_id: s,
            arrival: arrivals[s as usize],
            history_tokens: N_TOKENS as u32,
            input_tokens: 8,
            output_tokens: 4,
        })
        .collect();
    // A fresh session (no history → skipped) and an unknown one (error).
    requests.push(Request {
        session_id: 50,
        arrival: arrivals[6],
        history_tokens: 0,
        input_tokens: 8,
        output_tokens: 4,
    });
    requests.push(Request {
        session_id: 99,
        arrival: arrivals[7],
        history_tokens: 10,
        input_tokens: 8,
        output_tokens: 4,
    });
    requests.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));

    let sched = RestoreScheduler::new(2, ParallelConfig::new(4));
    let results = sched.run_trace(&model, &ctl, &requests, |s| token_map.get(&s).cloned());
    assert_eq!(results.len(), 5, "4 restores + 1 unknown; fresh skipped");
    let mut ok = 0;
    for (session, result) in results {
        if session == 99 {
            assert!(matches!(
                result,
                Err(hc_cachectl::CtlError::UnknownSession(99))
            ));
        } else {
            let kv = result.unwrap();
            assert_eq!(kv.n_tokens(), N_TOKENS);
            ok += 1;
        }
    }
    assert_eq!(ok, 4);
}
