//! Stress and equivalence suite for the million-session control plane
//! (`hc_cachectl::table::SessionTable` + the tenant-aware controller).
//!
//! Three claims, each load-bearing for the SoA rebuild:
//!
//! 1. **Exact LRU equivalence** — the epoch-bucketed `coldest_evictable`
//!    picks the *same* victim as the retained scan-based [`LruPolicy`]
//!    over a `SessionMeta` snapshot of the table, after every op of a
//!    seeded random op stream (proptest + a deterministic 10k-op replay).
//!    Epochs are bumped once per mutating op, so `last_touch` is unique
//!    per session and the documented id tie-break never has to fire —
//!    both selectors reduce to the same strict order.
//! 2. **Ladder order** — demotion still walks hidden → KV → recompute
//!    into a growing recompute prefix, through the interned mix table.
//! 3. **Tenant isolation** — on a two-tenant Zipf/Poisson trace
//!    (`hc_workload::tenant`), the hot tenant's burst runs the pool to
//!    its quota while the cold tenant, protected by a reservation, keeps
//!    its entire working set and records zero evictions.
//!
//! A churn stress (release-sized in CI, small in debug where the table's
//! per-mutation drift assertion is O(n)) closes the suite.

use std::collections::HashMap;
use std::sync::Arc;

use hc_cachectl::policy::{EvictionPolicy, LruPolicy, SessionMeta};
use hc_cachectl::quota::TenantQuota;
use hc_cachectl::table::SessionTable;
use hc_cachectl::{CacheController, ControllerConfig};
use hc_sched::partition::{LayerMethod, PartitionScheme};
use hc_storage::backend::MemStore;
use hc_storage::manager::StorageManager;
use hc_storage::StreamId;
use hc_tensor::Tensor2;
use hc_workload::rng::Rng;
use hc_workload::tenant::{generate_tenant_trace, TenantOpKind, TenantTraceConfig};
use proptest::prelude::*;

const N_LAYERS: usize = 4;

fn full_mix(table: &mut SessionTable) -> u32 {
    table
        .mixes_mut()
        .intern(&PartitionScheme::pure_hidden(N_LAYERS).layer_methods(N_LAYERS))
}

/// The scan-based reference: a `SessionMeta` snapshot of every evictable
/// session (resident bytes, demotable mix) fed to the retained
/// [`LruPolicy`]. This is exactly what the controller did before the SoA
/// rebuild, O(n) per pick.
fn scan_reference(table: &SessionTable, tenant_ok: &[bool]) -> Option<u64> {
    let mut candidates = Vec::new();
    for slot in 0..table.len() as u32 {
        let tenant = table.tenant_at(slot) as usize;
        if !tenant_ok.is_empty() && !tenant_ok.get(tenant).copied().unwrap_or(true) {
            continue;
        }
        if table.bytes_at(slot) == 0 || table.mixes().next_demotable(table.mix_at(slot)).is_none() {
            continue;
        }
        candidates.push(SessionMeta {
            session: table.id_at(slot),
            resident_bytes: table.bytes_at(slot),
            last_access: table.last_touch_at(slot),
            n_tokens: table.n_tokens_at(slot),
            restore_secs_current: 0.0,
            restore_secs_dropped: 0.0,
        });
    }
    if candidates.is_empty() {
        None
    } else {
        Some(LruPolicy.pick_victim(&candidates))
    }
}

/// One table op decoded from `(op, id, val)`; mirrors the churn mix the
/// controller generates (reopen included — same id, fresh ladder).
fn apply_op(table: &mut SessionTable, mix: u32, op: u8, id: u64, val: u64) {
    match op {
        0 => {
            table.open(id, id as u32 % 4, mix);
        }
        1 => {
            table.touch(id);
        }
        2 => {
            table.set_bytes(id, val);
        }
        3 => {
            table.demote(id);
        }
        4 => {
            table.credit(id, val / 8 + 1);
        }
        _ => {
            table.remove(id);
        }
    }
}

fn assert_equivalent(table: &mut SessionTable, tenant_ok: &[bool]) {
    let expected = scan_reference(table, tenant_ok);
    let got = table.coldest_evictable(tenant_ok).map(|(id, _slot)| id);
    assert_eq!(
        got, expected,
        "epoch-bucketed pick diverged from the scan-based LruPolicy"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every op of a seeded random stream over a bounded id space,
    /// the bucketed selector and the scan-based policy name the same
    /// victim.
    #[test]
    fn bucketed_lru_matches_scan_lru_on_random_op_streams(
        seed in 0u64..u64::MAX,
        len in 1usize..400,
    ) {
        let mut table = SessionTable::new();
        let mix = full_mix(&mut table);
        let mut rng = Rng::new(seed);
        for _ in 0..len {
            let op = rng.below(6) as u8;
            let id = rng.below(48);
            let val = rng.below(8192);
            apply_op(&mut table, mix, op, id, val);
            assert_equivalent(&mut table, &[]);
        }
    }
}

/// The deterministic long-haul companion: 10k seeded ops (enough to wrap
/// the default 4096-bucket epoch ring several times over), checking both
/// the unfiltered pick and per-tenant-filtered picks throughout.
#[test]
fn bucketed_lru_matches_scan_lru_over_10k_seeded_ops() {
    let mut table = SessionTable::new();
    let mix = full_mix(&mut table);
    let mut rng = Rng::new(0x5e55_1000);
    for step in 0..10_000u64 {
        let op = rng.below(6) as u8;
        let id = rng.below(64);
        let val = rng.below(8192);
        apply_op(&mut table, mix, op, id, val);
        assert_equivalent(&mut table, &[]);
        if step % 16 == 0 {
            // Per-tenant filters walk the same buckets without consuming
            // the shared cursor's soundness.
            let t = (step / 16 % 4) as usize;
            let mut allowed = vec![false; 4];
            allowed[t] = true;
            assert_equivalent(&mut table, &allowed);
        }
    }
    assert_eq!(table.column_bytes_sum(), table.total_bytes());
}

/// Demotion order through the interned mix table: hidden rungs first,
/// then KV, into a growing recompute prefix, exactly as the per-session
/// `Placement` ladder documents.
#[test]
fn demotion_ladder_walks_hidden_then_kv_through_the_mix_table() {
    let mut table = SessionTable::new();
    let mix = table.mixes_mut().intern(&[
        LayerMethod::Hidden,
        LayerMethod::Hidden,
        LayerMethod::KvOffload,
        LayerMethod::KvOffload,
    ]);
    table.open(7, 0, mix);
    table.set_bytes(7, 1024);
    let mut rungs = Vec::new();
    while let Some((layer, method)) = table.demote(7) {
        rungs.push((layer, method));
        // Every intermediate mix keeps the recompute-prefix invariant.
        let methods = table.methods_of(7).unwrap();
        let prefix = methods
            .iter()
            .take_while(|m| **m == LayerMethod::Recompute)
            .count();
        assert!(
            methods[prefix..]
                .iter()
                .all(|m| *m != LayerMethod::Recompute),
            "recompute layers must stay a prefix"
        );
    }
    assert_eq!(
        rungs,
        vec![
            (0, LayerMethod::Hidden),
            (1, LayerMethod::Hidden),
            (2, LayerMethod::KvOffload),
            (3, LayerMethod::KvOffload),
        ]
    );
    assert!(table.mixes().is_fully_dropped(table.mix_of(7).unwrap()));
}

// ---------------------------------------------------------------------------
// Two-tenant isolation on a generated trace
// ---------------------------------------------------------------------------

const D_MODEL: usize = 8;

fn controller(quota: u64, reservation_b: u64) -> CacheController<MemStore> {
    let mgr = Arc::new(StorageManager::new(Arc::new(MemStore::new(2)), D_MODEL));
    let mut cfg = ControllerConfig::with_quota(quota).with_expected_tokens(64);
    if reservation_b > 0 {
        cfg = cfg.with_tenant_quota(
            1,
            TenantQuota {
                reservation_bytes: reservation_b,
                cap_bytes: u64::MAX,
            },
        );
    }
    CacheController::new(mgr, N_LAYERS, D_MODEL, cfg)
}

/// Replays a tenant trace against a controller: opens admit under the
/// tenant, saves append real rows to the admitted streams and reconcile,
/// closes delete. Returns nothing — state is inspected via the
/// controller's own reporting.
fn replay(ctl: &CacheController<MemStore>, trace: &[hc_workload::tenant::TenantOp]) {
    let scheme = PartitionScheme::pure_hidden(N_LAYERS);
    let mut saved: HashMap<u64, u64> = HashMap::new();
    for op in trace {
        match op.kind {
            TenantOpKind::Open => {
                ctl.open_session_in(op.session, op.tenant, &scheme);
                saved.insert(op.session, 0);
            }
            TenantOpKind::Save { n_tokens } => {
                let prev = saved.insert(op.session, n_tokens).unwrap_or(0);
                let methods = ctl.session_methods(op.session).expect("opened");
                let rows = Tensor2::from_fn((n_tokens - prev) as usize, D_MODEL, |r, c| {
                    (op.session * 31 + r as u64 * 7 + c as u64) as f32 * 0.01
                });
                for (l, m) in methods.iter().enumerate() {
                    match m {
                        LayerMethod::Hidden => {
                            ctl.mgr()
                                .append_rows(StreamId::hidden(op.session, l as u32), &rows)
                                .unwrap();
                        }
                        LayerMethod::KvOffload => {
                            ctl.mgr()
                                .append_rows(StreamId::key(op.session, l as u32), &rows)
                                .unwrap();
                            ctl.mgr()
                                .append_rows(StreamId::value(op.session, l as u32), &rows)
                                .unwrap();
                        }
                        LayerMethod::Recompute => {}
                    }
                }
                ctl.mgr().flush_session(op.session).unwrap();
                ctl.on_saved(op.session, n_tokens).unwrap();
            }
            TenantOpKind::Close => {
                ctl.close_session(op.session).unwrap();
                saved.remove(&op.session);
            }
        }
    }
}

fn two_tenant_trace() -> Vec<hc_workload::tenant::TenantOp> {
    generate_tenant_trace(&TenantTraceConfig {
        n_tenants: 2,
        alpha: 2.5, // tenant 0 is the Zipf-hot burst
        rate: 0.4,
        horizon: 500.0,
        max_rounds: 3,
        round_interval: 30.0,
        tokens_per_round: 64,
        close_fraction: 0.1,
        seed: 7,
    })
}

/// Tenant 0's Zipf-hot burst runs the pool to its quota; tenant 1, whose
/// reservation covers its whole (much smaller) working set, survives
/// untouched, and the per-tenant counters attribute every demotion to
/// tenant 0.
#[test]
fn reserved_tenant_survives_the_hot_tenants_burst() {
    let trace = two_tenant_trace();
    assert!(
        trace.iter().any(|o| o.tenant == 1),
        "trace must exercise both tenants"
    );

    // Pass 1, no pressure: measure each tenant's organic footprint.
    let free = controller(u64::MAX, 0);
    replay(&free, &trace);
    let organic0 = free.tenant_stats(0).used_bytes;
    let organic1 = free.tenant_stats(1).used_bytes;
    assert!(organic0 > 4 * organic1, "tenant 0 must dominate the pool");

    // Pass 2: quota forces demotions, reservation shields tenant 1.
    let quota = organic1 + organic0 / 4;
    let ctl = controller(quota, organic1);
    replay(&ctl, &trace);

    assert!(
        ctl.used_bytes() <= quota,
        "pool must settle at quota: {} > {quota}",
        ctl.used_bytes()
    );
    let s0 = ctl.tenant_stats(0);
    let s1 = ctl.tenant_stats(1);
    assert!(
        s0.demotions > 0,
        "the hot tenant must have paid the pressure"
    );
    assert_eq!(s1.demotions, 0, "reserved tenant must never be victimized");
    assert_eq!(s1.bytes_evicted, 0);
    assert_eq!(
        s1.used_bytes, organic1,
        "reserved tenant keeps its whole working set"
    );
    assert!(
        s1.used_bytes >= organic1.min(quota),
        "reserved tenant stays above its reservation"
    );
    // Global counters agree with the per-tenant attribution.
    let m = ctl.metrics();
    assert_eq!(m.demotions, s0.demotions + s1.demotions);
    assert_eq!(m.bytes_evicted, s0.bytes_evicted + s1.bytes_evicted);
}

/// Without a reservation the same burst cannibalizes tenant 1 too — the
/// control experiment proving the reservation (not luck or LRU order) is
/// what shields it above.
#[test]
fn unreserved_cold_tenant_is_fair_game_under_the_same_burst() {
    let trace = two_tenant_trace();
    let free = controller(u64::MAX, 0);
    replay(&free, &trace);
    let organic1 = free.tenant_stats(1).used_bytes;

    let quota = free.tenant_stats(0).used_bytes / 8;
    let ctl = controller(quota, 0);
    replay(&ctl, &trace);
    let s1 = ctl.tenant_stats(1);
    assert!(
        s1.demotions > 0 || s1.used_bytes < organic1,
        "without a reservation the cold tenant shares the pain"
    );
}

// ---------------------------------------------------------------------------
// Churn stress
// ---------------------------------------------------------------------------

/// High-churn soak on the bare table: open/touch/charge/demote/close at a
/// population the old O(n)-scan controller could not sustain, then verify
/// the ledgers. Release CI runs this at 200k sessions (the debug build
/// keeps it small: the table's per-mutation drift assertion is O(n)
/// there, which is the point of having it).
#[test]
fn soa_table_survives_sustained_churn_with_zero_drift() {
    let (n, churn) = if cfg!(debug_assertions) {
        (2_000u64, 10_000u64)
    } else {
        (200_000u64, 1_000_000u64)
    };
    let mut table = SessionTable::new();
    let mix = full_mix(&mut table);
    for s in 0..n {
        table.open(s, s as u32 % 4, mix);
        table.set_bytes(s, 4096 + s % 512);
    }
    let mut rng = Rng::new(0x50a_c417);
    for _ in 0..churn {
        let id = rng.below(n);
        match rng.below(8) {
            0..=3 => {
                table.touch(id);
            }
            4 | 5 => {
                table.set_bytes(id, 1 + rng.below(16) * 1024);
            }
            6 => {
                if table.demote(id).is_some() {
                    let held = table.bytes_of(id).unwrap_or(0);
                    table.credit(id, held / 4 + 1);
                } else {
                    table.remove(id);
                    table.open(id, id as u32 % 4, mix);
                    table.set_bytes(id, 4096);
                }
            }
            _ => {
                table.remove(id);
                table.open(id, id as u32 % 4, mix);
                table.set_bytes(id, 1 + rng.below(16) * 1024);
            }
        }
    }
    assert_eq!(table.len() as u64, n, "population must stay constant");
    assert_eq!(
        table.column_bytes_sum(),
        table.total_bytes(),
        "SoA column must sum to the atomic total after sustained churn"
    );
    let tenant_sum: u64 = (0..table.n_tenants() as u32)
        .map(|t| table.tenant_usage(t).bytes)
        .sum();
    assert_eq!(tenant_sum, table.total_bytes());
    // The table must still be able to name victims in epoch order.
    let mut last = 0;
    for _ in 0..64 {
        let (id, slot) = table
            .coldest_evictable(&[])
            .expect("evictable churned pool");
        let touch = table.last_touch_at(slot);
        assert!(touch >= last, "victims must come out coldest-first");
        last = touch;
        table.touch(id);
    }
}
