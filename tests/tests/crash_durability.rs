//! Kill-and-reopen crash durability: any prefix of an append/flush/delete
//! op stream, cut at an *arbitrary byte offset* of the journal (the
//! moment the process died), must reopen to a consistent manager —
//! durable cursor never past what was written, recovered rows a
//! bit-identical prefix of one generation of the never-crashed history,
//! and resident-byte accounting exact (freed == tracked after restart).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use hc_storage::backend::FileStore;
use hc_storage::journal::{journal_path, CompactionPolicy, Journal, JournalHeader};
use hc_storage::manager::StorageManager;
use hc_storage::{Precision, StreamId};
use hc_tensor::f16::f16_roundtrip;
use hc_tensor::Tensor2;
use proptest::prelude::*;

const D: usize = 8;
const N_STREAMS: usize = 2;

/// Byte length of the journal's header frame (8-byte frame head + 14-byte
/// header payload): the minimum consistent journal. Cuts shorter than
/// this must fail reopen with a typed error instead of fabricating state.
const HEADER_FRAME: u64 = 22;

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hccrash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stream(si: usize) -> StreamId {
    StreamId::hidden(si as u64 + 1, 0)
}

/// Deterministic row content, distinct across stream, generation and
/// (row, col) — so mixed-generation or misplaced rows can never pass the
/// bit-identity check.
fn gen_row_val(si: usize, generation: usize, row: usize, col: usize) -> f32 {
    let v = (si as u64)
        .wrapping_mul(1_000_003)
        .wrapping_add(generation as u64 * 10_007)
        .wrapping_add((row * D + col) as u64);
    ((v % 1997) as f32) * 0.125 - 124.0
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Applies a deterministic op stream (append / flush / delete over
/// `N_STREAMS` streams) to a fresh durable manager under `root`, then
/// drops it ("kills the process"). Returns, per stream, the rows-appended
/// count of every generation (deletes start a new generation).
fn apply_ops(root: &Path, seed: u64, n_ops: usize) -> Vec<Vec<usize>> {
    let mut rng = SplitMix64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    let mut gens: Vec<Vec<usize>> = vec![vec![0]; N_STREAMS];
    let m = StorageManager::create_durable(root, 2, D, Precision::F16).unwrap();
    for _ in 0..n_ops {
        let si = (rng.next() % N_STREAMS as u64) as usize;
        let s = stream(si);
        match rng.next() % 4 {
            // Appends twice as likely as flushes or deletes.
            0 | 1 => {
                let k = (rng.next() % 80 + 1) as usize;
                let g = gens[si].len() - 1;
                let start = gens[si][g];
                let t = Tensor2::from_fn(k, D, |r, c| gen_row_val(si, g, start + r, c));
                m.append_rows(s, &t).unwrap();
                gens[si][g] += k;
            }
            2 => m.flush_stream(s).unwrap(),
            _ => {
                m.delete_stream(s);
                gens[si].push(0);
            }
        }
    }
    gens
}

/// Reopens `root` and checks the crash-consistency contract against the
/// per-generation history `gens`. Returns an error description instead of
/// panicking so the proptest harness can attach the failing case.
fn check_reopen(root: &Path, gens: &[Vec<usize>]) -> Result<(), String> {
    let (m2, report) = StorageManager::reopen(root).map_err(|e| format!("reopen failed: {e}"))?;
    for (si, stream_gens) in gens.iter().enumerate() {
        let s = stream(si);
        let n = m2.n_tokens(s) as usize;
        if n == 0 {
            continue;
        }
        let got = m2
            .read_rows(s, 0, n as u64)
            .map_err(|e| format!("stream {si}: reading {n} recovered rows: {e}"))?;
        // Reads must be deterministic after recovery.
        let again = m2.read_rows(s, 0, n as u64).unwrap();
        if got != again {
            return Err(format!(
                "stream {si}: recovered reads are not deterministic"
            ));
        }
        let matches_generation = |g: usize| {
            if n > stream_gens[g] {
                return false;
            }
            (0..n).all(|r| (0..D).all(|c| got.get(r, c) == f16_roundtrip(gen_row_val(si, g, r, c))))
        };
        if !(0..stream_gens.len()).any(matches_generation) {
            return Err(format!(
                "stream {si}: {n} recovered rows are a bit-identical prefix of no \
                 generation (history: {stream_gens:?})"
            ));
        }
    }
    // Resident accounting must be exact across the restart: the reported
    // figure, the tracked aggregate, and what deletes actually free all
    // agree.
    if report.resident_bytes != m2.total_resident_bytes() {
        return Err(format!(
            "report says {} resident bytes, manager tracks {}",
            report.resident_bytes,
            m2.total_resident_bytes()
        ));
    }
    let freed: u64 = (0..N_STREAMS).map(|si| m2.delete_stream(stream(si))).sum();
    if freed != report.resident_bytes {
        return Err(format!(
            "freed {freed} != tracked {} after reopen",
            report.resident_bytes
        ));
    }
    if m2.total_resident_bytes() != 0 {
        return Err("deleting every stream left resident bytes".into());
    }
    Ok(())
}

fn cut_journal(root: &Path, cut: u64) {
    let jpath = journal_path(root);
    std::fs::OpenOptions::new()
        .write(true)
        .open(&jpath)
        .unwrap()
        .set_len(cut)
        .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole property: run a random op stream against a durable
    /// manager, kill it, cut the journal at a random byte offset (torn
    /// final append included), reopen — always consistent.
    #[test]
    fn kill_and_reopen_is_consistent_at_any_journal_cut(
        seed in 0u64..10_000,
        n_ops in 1usize..25,
        cut_sel in 0u64..1_000_000,
    ) {
        let root = tmp_root(&format!("prop-{seed}-{n_ops}-{cut_sel}"));
        let gens = apply_ops(&root, seed, n_ops);
        let len = std::fs::metadata(journal_path(&root)).unwrap().len();
        // Anywhere from "just the header survived" to "nothing was lost".
        let cut = HEADER_FRAME + cut_sel % (len - HEADER_FRAME + 1);
        cut_journal(&root, cut);
        let outcome = check_reopen(&root, &gens);
        std::fs::remove_dir_all(&root).unwrap();
        prop_assert!(
            outcome.is_ok(),
            "seed {} ops {} cut {}/{}: {}",
            seed, n_ops, cut, len, outcome.unwrap_err()
        );
    }
}

/// Exhaustive companion to the proptest: one fixed history (two
/// generations, full chunks, flushed tails, a delete), killed at *every*
/// journal byte offset. Sub-header cuts must fail typed; all others must
/// recover consistently.
#[test]
fn reopen_is_consistent_at_every_journal_cut_offset() {
    let master = tmp_root("sweep-master");
    let gens = {
        let m = StorageManager::create_durable(&master, 2, D, Precision::F16).unwrap();
        let s = stream(0);
        let g0 = Tensor2::from_fn(100, D, |r, c| gen_row_val(0, 0, r, c));
        m.append_rows(s, &g0).unwrap(); // chunk 0 + 36-row tail
        m.flush_stream(s).unwrap();
        m.delete_stream(s);
        let g1 = Tensor2::from_fn(30, D, |r, c| gen_row_val(0, 1, r, c));
        m.append_rows(s, &g1).unwrap();
        m.flush_stream(s).unwrap();
        vec![vec![100usize, 30], vec![0]]
    };
    let len = std::fs::metadata(journal_path(&master)).unwrap().len();
    for cut in 0..=len {
        let case = tmp_root(&format!("sweep-{cut}"));
        copy_dir(&master, &case);
        cut_journal(&case, cut);
        if cut < HEADER_FRAME {
            assert!(
                StorageManager::reopen(&case).is_err(),
                "cut {cut}: a header-less journal must fail reopen, not fabricate state"
            );
        } else if let Err(msg) = check_reopen(&case, &gens) {
            panic!("cut {cut}/{len}: {msg}");
        }
        std::fs::remove_dir_all(&case).unwrap();
    }
    std::fs::remove_dir_all(&master).unwrap();
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// A churn-heavy history with compaction enabled must reopen to exactly
/// the state an uncompacted journal would have produced — same rows, same
/// accounting — from a journal that stays O(live chunks).
#[test]
fn compacted_journal_reopens_equivalently_to_full_history() {
    let root = tmp_root("compact-equiv");
    let store = Arc::new(FileStore::new(&root, 2).unwrap());
    let journal = Arc::new(
        Journal::create(
            &root,
            JournalHeader {
                d_model: D,
                n_devices: 2,
                precision: Precision::F16,
            },
            true,
        )
        .unwrap()
        .with_compaction(CompactionPolicy {
            min_records: 8,
            max_dead_ratio: 0.3,
        }),
    );
    let m = StorageManager::with_precision(store, D, Precision::F16).with_journal(journal);
    let kept = stream(0);
    let churn = stream(1);
    // The kept stream survives many churn generations; each delete makes
    // the churn history dead and eventually trips the rewrite.
    let rows_kept = Tensor2::from_fn(100, D, |r, c| gen_row_val(0, 0, r, c));
    m.append_rows(kept, &rows_kept).unwrap();
    m.flush_stream(kept).unwrap();
    let final_gen = 6;
    for g in 0..=final_gen {
        let t = Tensor2::from_fn(70 + g, D, |r, c| gen_row_val(1, g, r, c));
        m.append_rows(churn, &t).unwrap();
        m.flush_stream(churn).unwrap();
        if g < final_gen {
            m.delete_stream(churn);
        }
    }
    let journal = m.journal().unwrap();
    assert!(
        journal.compactions() >= 1,
        "six churn generations must trip a min_records=8, ratio-0.3 policy"
    );
    // The journal holds the live prefix, not the seven-generation
    // history: well under two records per live chunk plus baselines.
    assert!(
        journal.records_total() <= 12,
        "journal still holds {} records after compaction",
        journal.records_total()
    );
    let resident = m.total_resident_bytes();
    drop(m);

    let (m2, report) = StorageManager::reopen(&root).unwrap();
    assert_eq!(report.streams_recovered, 2);
    assert_eq!(report.resident_bytes, resident);
    assert_eq!(m2.n_tokens(kept), 100);
    assert_eq!(m2.n_tokens(churn), 70 + final_gen as u64);
    let got = m2.read_rows(kept, 0, 100).unwrap();
    for r in 0..100 {
        for c in 0..D {
            assert_eq!(got.get(r, c), f16_roundtrip(gen_row_val(0, 0, r, c)));
        }
    }
    let got = m2.read_rows(churn, 0, 70 + final_gen as u64).unwrap();
    for r in 0..70 + final_gen {
        for c in 0..D {
            assert_eq!(
                got.get(r, c),
                f16_roundtrip(gen_row_val(1, final_gen, r, c)),
                "row {r} col {c} must come from the final generation"
            );
        }
    }
    // Deletes after reopen free exactly what recovery reported.
    let freed = m2.delete_stream(kept) + m2.delete_stream(churn);
    assert_eq!(freed, report.resident_bytes);
    std::fs::remove_dir_all(&root).unwrap();
}

/// A frame that landed twice (a retried append the crash interleaved)
/// must not fabricate state: every single-frame duplication reopens to
/// the same recovered rows as the pristine journal.
#[test]
fn duplicated_journal_frames_recover_the_pristine_state() {
    let master = tmp_root("dup-master");
    let gens = {
        let m = StorageManager::create_durable(&master, 2, D, Precision::F16).unwrap();
        let s = stream(0);
        let g0 = Tensor2::from_fn(80, D, |r, c| gen_row_val(0, 0, r, c));
        m.append_rows(s, &g0).unwrap(); // chunk 0 + 16-row tail
        m.flush_stream(s).unwrap();
        m.delete_stream(s);
        let g1 = Tensor2::from_fn(40, D, |r, c| gen_row_val(0, 1, r, c));
        m.append_rows(s, &g1).unwrap();
        m.flush_stream(s).unwrap();
        vec![vec![80usize, 40], vec![0]]
    };
    let bytes = std::fs::read(journal_path(&master)).unwrap();
    // Parse frame boundaries: [len u32][crc u32][payload].
    let mut frames: Vec<(usize, usize)> = Vec::new();
    let mut off = 0usize;
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        frames.push((off, off + 8 + len));
        off += 8 + len;
    }
    assert!(
        frames.len() > 3,
        "fixture journal should hold several frames"
    );
    for (idx, &(start, end)) in frames.iter().enumerate().skip(1) {
        let case = tmp_root(&format!("dup-{idx}"));
        copy_dir(&master, &case);
        let mut dup = bytes[..end].to_vec();
        dup.extend_from_slice(&bytes[start..end]);
        dup.extend_from_slice(&bytes[end..]);
        std::fs::write(journal_path(&case), &dup).unwrap();
        if let Err(msg) = check_reopen(&case, &gens) {
            panic!("duplicated frame {idx}: {msg}");
        }
        std::fs::remove_dir_all(&case).unwrap();
    }
    std::fs::remove_dir_all(&master).unwrap();
}

/// Crashing before anything was journaled beyond the header recovers an
/// empty manager, and the store root is reusable immediately.
#[test]
fn reopen_of_an_empty_journal_recovers_an_empty_manager() {
    let root = tmp_root("empty");
    drop(StorageManager::create_durable(&root, 2, D, Precision::F16).unwrap());
    let (m2, report) = StorageManager::reopen(&root).unwrap();
    assert_eq!(report.streams_recovered, 0);
    assert_eq!(report.resident_bytes, 0);
    assert_eq!(m2.total_resident_bytes(), 0);
    // The reopened manager is immediately writable and durable again.
    let s = stream(0);
    let t = Tensor2::from_fn(64, D, |r, c| gen_row_val(0, 0, r, c));
    m2.append_rows(s, &t).unwrap();
    drop(m2);
    let (m3, report3) = StorageManager::reopen(&root).unwrap();
    assert_eq!(report3.streams_recovered, 1);
    assert_eq!(m3.n_tokens(s), 64);
    std::fs::remove_dir_all(&root).unwrap();
}
