//! End-to-end integration: model ⇄ storage ⇄ restoration across crates,
//! including the real-file backend (state actually round-trips through the
//! filesystem, as it would through SSDs in the paper's system).

use std::sync::Arc;

use hc_model::{KvCache, Model, ModelConfig};
use hc_restore::engine::{kv_max_error, restore_session, save_session_state};
use hc_sched::partition::{LayerMethod, PartitionScheme};
use hc_storage::backend::{ChunkStore, FileStore, MemStore};
use hc_storage::manager::StorageManager;
use hcache::HCacheSystem;

fn history(n: usize, seed: u32) -> Vec<u32> {
    (0..n as u32).map(|i| (i * 131 + seed) % 256).collect()
}

fn roundtrip_on<S: ChunkStore>(store: Arc<S>, scheme: PartitionScheme) -> f32 {
    let cfg = ModelConfig::tiny_llama();
    let model = Model::new(&cfg, 99);
    let mgr = StorageManager::new(store, cfg.d_model);
    let tokens = history(140, 5);
    let mut kv = KvCache::new(&cfg);
    let out = model.prefill(&tokens, &mut kv, true);
    save_session_state(
        &model,
        &mgr,
        1,
        &out.hidden_per_layer.unwrap(),
        &kv,
        &scheme,
    )
    .unwrap();
    let restored = restore_session(&model, &mgr, 1, &tokens, tokens.len(), &scheme).unwrap();
    kv_max_error(&restored, &kv)
}

#[test]
fn file_backend_roundtrip_is_near_lossless() {
    let dir = std::env::temp_dir().join(format!("hc-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(FileStore::new(&dir, 4).unwrap());
    let err = roundtrip_on(store.clone(), PartitionScheme::pure_hidden(4));
    assert!(err < 0.05, "file-backed restore error {err}");
    // Data really hit the filesystem.
    assert!(store.stats().total_bytes_written() > 0);
    let files: Vec<_> = std::fs::read_dir(dir.join("dev0")).unwrap().collect();
    assert!(!files.is_empty(), "no chunk files on device 0");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn file_and_memory_backends_agree_exactly() {
    let dir = std::env::temp_dir().join(format!("hc-agree-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let scheme = PartitionScheme {
        l_h: 3,
        l_o: 1,
        complement: LayerMethod::KvOffload,
    };
    let err_mem = roundtrip_on(Arc::new(MemStore::new(4)), scheme.clone());
    let err_file = roundtrip_on(Arc::new(FileStore::new(&dir, 4).unwrap()), scheme);
    assert_eq!(
        err_mem.to_bits(),
        err_file.to_bits(),
        "backends must be bit-identical"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn opt_style_model_full_lifecycle() {
    // LayerNorm + learned positions (OPT family): restoration is a pure
    // projection; run the whole facade lifecycle on it.
    let cfg = ModelConfig::tiny_opt();
    let mut sys = HCacheSystem::in_memory(&cfg, 21, 2);
    let sid = sys.open_session();
    let out1 = sys.round(sid, &[3, 1, 4, 1, 5], 6).unwrap();
    let out2 = sys.round(sid, &[9, 2, 6], 6).unwrap();
    assert_eq!(out1.len(), 6);
    assert_eq!(out2.len(), 6);
    let restored = sys.restore(sid).unwrap();
    assert_eq!(restored.n_tokens(), 5 + 6 + 3 + 6);
    assert!(restored.is_consistent());
}

#[test]
fn long_multi_round_conversation_with_all_schemes() {
    // 5 rounds under each scheme flavor; the restored state must keep
    // matching a from-scratch replay.
    let cfg = ModelConfig::tiny_llama();
    for scheme in [
        PartitionScheme::pure_hidden(cfg.n_layers),
        PartitionScheme {
            l_h: 3,
            l_o: 1,
            complement: LayerMethod::KvOffload,
        },
        PartitionScheme {
            l_h: 2,
            l_o: 2,
            complement: LayerMethod::Recompute,
        },
    ] {
        let mut sys = HCacheSystem::in_memory(&cfg, 77, 4).with_scheme(scheme.clone());
        let sid = sys.open_session();
        let mut all_tokens: Vec<u32> = Vec::new();
        for round in 0..5u32 {
            let prompt: Vec<u32> = (0..6).map(|i| (round * 11 + i) % 256).collect();
            let reply = sys.round(sid, &prompt, 4).unwrap();
            all_tokens.extend(&prompt);
            all_tokens.extend(&reply);
        }
        // Replay reference.
        let model = Model::new(&cfg, 77);
        let mut reference = KvCache::new(&cfg);
        model.prefill(&all_tokens, &mut reference, false);
        let restored = sys.restore(sid).unwrap();
        let err = kv_max_error(&restored, &reference);
        assert!(err < 0.05, "{scheme:?}: error {err}");
    }
}

#[test]
fn eviction_and_restore_interleaved_across_sessions() {
    let cfg = ModelConfig::tiny_llama();
    let mut sys = HCacheSystem::in_memory(&cfg, 31, 4);
    let a = sys.open_session();
    let b = sys.open_session();
    let c = sys.open_session();
    // Interleave rounds of three conversations.
    sys.round(a, &history(10, 1), 3).unwrap();
    sys.round(b, &history(20, 2), 3).unwrap();
    sys.round(a, &history(5, 3), 3).unwrap();
    sys.round(c, &history(8, 4), 3).unwrap();
    sys.round(b, &history(7, 5), 3).unwrap();
    sys.round(a, &history(4, 6), 3).unwrap();
    assert_eq!(sys.context_len(a).unwrap(), 10 + 3 + 5 + 3 + 4 + 3);
    assert_eq!(sys.context_len(b).unwrap(), 20 + 3 + 7 + 3);
    assert_eq!(sys.context_len(c).unwrap(), 8 + 3);
    for sid in [a, b, c] {
        let kv = sys.restore(sid).unwrap();
        assert_eq!(kv.n_tokens(), sys.context_len(sid).unwrap());
    }
    // Closing one session leaves the others restorable.
    sys.close_session(b).unwrap();
    assert!(sys.restore(a).is_ok());
    assert!(sys.restore(c).is_ok());
}
