//! Integration tests for the two extensions (§7 quantization, §4
//! hierarchical storage) composed with the rest of the system.

use std::sync::Arc;

use hc_model::{KvCache, Model, ModelConfig};
use hc_restore::engine::{kv_max_error, restore_session, save_session_state};
use hc_sched::partition::{LayerMethod, PartitionScheme};
use hc_storage::backend::MemStore;
use hc_storage::manager::StorageManager;
use hc_storage::tiered::TieredStore;
use hc_storage::Precision;

fn tokens(n: usize, seed: u32) -> Vec<u32> {
    (0..n as u32).map(|i| (i * 53 + seed) % 256).collect()
}

#[test]
fn quantized_restore_generates_same_tokens() {
    // int8 hidden states introduce more error than fp16, but greedy
    // generation should still continue identically at test scale.
    let cfg = ModelConfig::tiny_llama();
    let model = Model::new(&cfg, 3);
    let mgr =
        StorageManager::with_precision(Arc::new(MemStore::new(4)), cfg.d_model, Precision::Int8);
    let toks = tokens(90, 7);
    let scheme = PartitionScheme::pure_hidden(cfg.n_layers);

    let mut reference = KvCache::new(&cfg);
    let out = model.prefill(&toks, &mut reference, true);
    save_session_state(
        &model,
        &mgr,
        1,
        &out.hidden_per_layer.unwrap(),
        &reference,
        &scheme,
    )
    .unwrap();
    let mut restored = restore_session(&model, &mgr, 1, &toks, toks.len(), &scheme).unwrap();

    let err = kv_max_error(&restored, &reference);
    assert!(err < 0.3, "int8 restore error too large: {err}");

    let (row_ref, _) = model.decode_step(9, &mut reference.clone(), false);
    let (row_q, _) = model.decode_step(9, &mut restored, false);
    assert_eq!(
        model.greedy_next_token(&row_ref),
        model.greedy_next_token(&row_q),
        "quantized restoration changed the generated token"
    );
}

#[test]
fn quantized_mixed_scheme_kv_layers_also_quantize() {
    let cfg = ModelConfig::tiny_llama();
    let model = Model::new(&cfg, 11);
    let mgr =
        StorageManager::with_precision(Arc::new(MemStore::new(2)), cfg.d_model, Precision::Int8);
    let toks = tokens(70, 3);
    let scheme = PartitionScheme {
        l_h: 3,
        l_o: 1,
        complement: LayerMethod::KvOffload,
    };
    let mut reference = KvCache::new(&cfg);
    let out = model.prefill(&toks, &mut reference, true);
    save_session_state(
        &model,
        &mgr,
        1,
        &out.hidden_per_layer.unwrap(),
        &reference,
        &scheme,
    )
    .unwrap();
    let restored = restore_session(&model, &mgr, 1, &toks, toks.len(), &scheme).unwrap();
    assert!(kv_max_error(&restored, &reference) < 0.3);
}

#[test]
fn tiered_backend_end_to_end_with_hcache_system() {
    // The facade runs unchanged over the hierarchical store.
    let cfg = ModelConfig::tiny_llama();
    let store = Arc::new(TieredStore::new(Arc::new(MemStore::new(4)), 1 << 20));
    let mut sys = hcache::HCacheSystem::with_store(
        &cfg,
        21,
        Arc::clone(&store),
        PartitionScheme::pure_hidden(cfg.n_layers),
    );
    let sid = sys.open_session();
    // > 64 tokens so at least one durable chunk exists per stream (shorter
    // histories restore straight from the manager's tail buffer and never
    // touch the chunk store).
    sys.round(sid, &tokens(70, 1), 6).unwrap();
    sys.round(sid, &tokens(10, 2), 6).unwrap();
    let restored = sys.restore(sid).unwrap();
    assert_eq!(restored.n_tokens(), 70 + 6 + 10 + 6);
    // The immediate restore after saving hits the DRAM front.
    assert!(store.front_hits() > 0, "expected DRAM hits on hot restore");
}

#[test]
fn tiered_backend_survives_front_thrashing() {
    // Front sized below one session: every read goes to the backing store,
    // results stay correct.
    let cfg = ModelConfig::tiny_llama();
    let store = Arc::new(TieredStore::new(Arc::new(MemStore::new(4)), 256));
    let model = Model::new(&cfg, 9);
    let mgr = StorageManager::new(Arc::clone(&store), cfg.d_model);
    let toks = tokens(80, 5);
    let scheme = PartitionScheme::pure_hidden(cfg.n_layers);
    let mut reference = KvCache::new(&cfg);
    let out = model.prefill(&toks, &mut reference, true);
    save_session_state(
        &model,
        &mgr,
        1,
        &out.hidden_per_layer.unwrap(),
        &reference,
        &scheme,
    )
    .unwrap();
    let restored = restore_session(&model, &mgr, 1, &toks, toks.len(), &scheme).unwrap();
    assert!(kv_max_error(&restored, &reference) < 0.05);
    assert!(store.front_misses() > 0);
}
