//! The executable fault matrix: every storage-fault class from the
//! `hc-storage` manager docs, driven through the full restore stack
//! (`FaultStore` → `StorageManager` → `CacheController` →
//! `RestoreScheduler`). The acceptance bar for each row: the fault
//! surfaces as a *typed* error naming the failing chunk and device, its
//! blast radius is exactly one session, and every sibling session
//! restores bit-identical to an unfaulted run.
//!
//! The device-health rows raise the bar from "typed error" to "no error
//! at all": with a whole device down mid-restore, the lane's circuit
//! breaker opens, affected sessions degrade their mixes to recompute
//! (bit-identical to a from-scratch restore of the surviving mix),
//! unaffected sessions never notice, and after the lane heals the
//! half-open probe restores full-speed mixes. The seeded chaos soak
//! drives a randomized fault schedule through the reactor scheduler and
//! demands zero failed sessions with exact degradation accounting.

use std::sync::Arc;
use std::time::Duration;

use hc_cachectl::scheduler::{RestoreJob, RestoreScheduler};
use hc_cachectl::{CacheController, ControllerConfig, CtlError};
use hc_model::{KvCache, Model, ModelConfig};
use hc_restore::engine::{
    kv_max_error, restore_session_with_methods, save_session_state, DegradationReport, DegradeCause,
};
use hc_sched::partition::{LayerMethod, PartitionScheme};
use hc_storage::backend::MemStore;
use hc_storage::chunk::ChunkKey;
use hc_storage::fault::{FaultStore, FaultTarget};
use hc_storage::health::{BreakerConfig, BreakerState, DeviceHealth, RetryPolicy};
use hc_storage::manager::StorageManager;
use hc_storage::reactor::Reactor;
use hc_storage::{StorageError, StreamId};
use hc_tensor::ParallelConfig;

const N_TOKENS: usize = 70;

type Store = FaultStore<MemStore>;

/// Three saved sessions over a fault-injecting store, with sequential
/// restore references captured *before* any fault is armed.
struct Rig {
    model: Model,
    store: Arc<Store>,
    mgr: Arc<StorageManager<Store>>,
    ctl: CacheController<Store>,
    jobs: Vec<RestoreJob>,
    references: std::collections::HashMap<u64, KvCache>,
}

fn rig() -> Rig {
    let cfg = ModelConfig::tiny_llama();
    let model = Model::new(&cfg, 31);
    let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(4))));
    let mgr = Arc::new(StorageManager::new(Arc::clone(&store), cfg.d_model));
    let ctl = CacheController::new(
        Arc::clone(&mgr),
        cfg.n_layers,
        cfg.d_model,
        ControllerConfig::unlimited(),
    );
    let scheme = PartitionScheme::pure_hidden(cfg.n_layers);
    let mut jobs = Vec::new();
    let mut references = std::collections::HashMap::new();
    for s in 1..=3u64 {
        let methods = ctl.open_session(s, &scheme);
        let tokens: Vec<u32> = (0..N_TOKENS as u32)
            .map(|i| (i * 13 + s as u32) % 256)
            .collect();
        let mut kv = KvCache::new(&cfg);
        let out = model.prefill(&tokens, &mut kv, true);
        save_session_state(
            &model,
            &mgr,
            s,
            &out.hidden_per_layer.unwrap(),
            &kv,
            &scheme,
        )
        .unwrap();
        ctl.on_saved(s, N_TOKENS as u64).unwrap();
        let seq =
            restore_session_with_methods(&model, &mgr, s, &tokens, N_TOKENS, &methods).unwrap();
        references.insert(s, seq);
        jobs.push(RestoreJob { session: s, tokens });
    }
    Rig {
        model,
        store,
        mgr,
        ctl,
        jobs,
        references,
    }
}

fn run_sched(r: &Rig) -> Vec<(u64, Result<KvCache, CtlError>)> {
    RestoreScheduler::new(2, ParallelConfig::new(4)).run(&r.model, &r.ctl, &r.jobs)
}

fn assert_sibling_bit_identical(r: &Rig, session: u64, result: Result<KvCache, CtlError>) {
    let kv = result.unwrap_or_else(|e| panic!("healthy session {session} failed: {e}"));
    assert_eq!(
        kv_max_error(&kv, &r.references[&session]),
        0.0,
        "session {session} must restore bit-identical despite the sibling's fault"
    );
}

/// Matrix row 1: a permanent device read error fails exactly the faulted
/// session, with a typed error naming the chunk and its device lane.
#[test]
fn permanent_device_fault_fails_exactly_one_session() {
    let r = rig();
    // Every read of session 2's layer-1 hidden stream fails permanently.
    r.store.fail_reads(
        FaultTarget::Stream(StreamId::hidden(2, 1)),
        usize::MAX,
        false,
    );
    for (session, result) in run_sched(&r) {
        if session == 2 {
            match result {
                Err(CtlError::Storage(StorageError::DeviceFailed {
                    key,
                    transient: false,
                    ..
                })) => {
                    assert_eq!(key.stream.session, 2, "error must name the faulted stream");
                }
                other => panic!("expected a typed DeviceFailed, got {other:?}"),
            }
        } else {
            assert_sibling_bit_identical(&r, session, result);
        }
    }
}

/// Matrix row 2: transient device errors within the retry budget are
/// masked end to end — every session completes bit-identical.
#[test]
fn transient_device_faults_are_masked_end_to_end() {
    let r = rig();
    let blips = RetryPolicy::default().attempts - 1;
    r.store.fail_reads(FaultTarget::Any, blips, true);
    for (session, result) in run_sched(&r) {
        assert_sibling_bit_identical(&r, session, result);
    }
    assert_eq!(
        r.store.reads_failed() as usize,
        blips,
        "the injected blips must actually have fired"
    );
}

/// Matrix row 3: a device write error surfaces typed from the save path,
/// naming the chunk whose write failed.
#[test]
fn device_write_fault_surfaces_typed_from_save() {
    let r = rig();
    let cfg = ModelConfig::tiny_llama();
    let scheme = PartitionScheme::pure_hidden(cfg.n_layers);
    r.ctl.open_session(9, &scheme);
    let victim = StreamId::hidden(9, 0);
    r.store.fail_writes(FaultTarget::Stream(victim), 1, false);
    let tokens: Vec<u32> = (0..N_TOKENS as u32).map(|i| (i * 7 + 9) % 256).collect();
    let mut kv = KvCache::new(&cfg);
    let out = r.model.prefill(&tokens, &mut kv, true);
    let err = save_session_state(
        &r.model,
        &r.mgr,
        9,
        &out.hidden_per_layer.unwrap(),
        &kv,
        &scheme,
    )
    .unwrap_err();
    match err {
        StorageError::DeviceFailed {
            key,
            transient: false,
            ..
        } => {
            assert_eq!(key.stream, victim);
            assert_eq!(
                key,
                ChunkKey {
                    stream: victim,
                    chunk_idx: 0
                }
            );
        }
        other => panic!("expected DeviceFailed from the save path, got {other:?}"),
    }
    assert_eq!(r.store.writes_failed(), 1);
}

/// Matrix row 4: a read stall delays but never fails — all sessions
/// complete bit-identical through a slow lane.
#[test]
fn stalled_device_reads_complete_bit_identical() {
    let r = rig();
    r.store
        .stall_reads(FaultTarget::Device(1), Duration::from_micros(300));
    for (session, result) in run_sched(&r) {
        assert_sibling_bit_identical(&r, session, result);
    }
}

/// Matrix row 5: a delete racing the restore run fails only the deleted
/// session with a typed storage error; siblings restore bit-identical.
#[test]
fn mid_restore_delete_race_fails_only_the_deleted_session() {
    let r = rig();
    let mgr2 = Arc::clone(&r.mgr);
    // Fire at the first chunk read of the scheduler run: session 2's
    // streams vanish while (or just before) its restore walks them.
    r.store.on_nth_read(0, move || {
        mgr2.delete_session(2);
    });
    for (session, result) in run_sched(&r) {
        if session == 2 {
            assert!(
                matches!(result, Err(CtlError::Storage(_))),
                "deleted session must fail typed, got {result:?}"
            );
        } else {
            assert_sibling_bit_identical(&r, session, result);
        }
    }
}

/// The typed propagation chain: a `DeviceFailed` keeps its chunk key and
/// device lane intact through `RestoreError` → `CtlError` →
/// `SystemError`.
#[test]
fn device_failed_payload_survives_the_error_chain() {
    let key = ChunkKey {
        stream: StreamId::hidden(4, 2),
        chunk_idx: 3,
    };
    let storage = StorageError::DeviceFailed {
        key,
        device: 1,
        transient: false,
        msg: "injected device read failure".into(),
    };
    let restore = hc_restore::engine::RestoreError::from(storage);
    let ctl = CtlError::from(restore);
    let system = hcache::SystemError::from(ctl);
    match system {
        hcache::SystemError::Storage(StorageError::DeviceFailed {
            key: k,
            device,
            transient,
            ..
        }) => {
            assert_eq!(k, key);
            assert_eq!(device, 1);
            assert!(!transient);
        }
        other => panic!("payload lost in the chain: {other:?}"),
    }
}

// --- Device-health rows: whole-device outage mid-restore -----------------
//
// 64-token sessions keep the device math exact: each stream is one chunk,
// and layer `l`'s chunk lands on device `(0 + l) % 4`. Downing device 1
// strands exactly layer 1, so pure-hidden sessions must degrade the
// prefix `0..=1` to recompute while a session whose mix already
// recomputes layers 0–1 never touches the dead lane.

const DEG_TOKENS: usize = 64;

struct DegradedRig {
    model: Model,
    store: Arc<Store>,
    mgr: Arc<StorageManager<Store>>,
    ctl: CacheController<Store>,
    jobs: Vec<RestoreJob>,
    references: std::collections::HashMap<u64, KvCache>,
}

impl DegradedRig {
    fn tokens_of(&self, session: u64) -> &[u32] {
        &self
            .jobs
            .iter()
            .find(|j| j.session == session)
            .expect("session saved by the rig")
            .tokens
    }
}

/// A breaker that trips after two failures — a real outage hits it within
/// one scheduler run, while the single-blip rows above never would.
fn deg_breaker() -> BreakerConfig {
    BreakerConfig {
        consecutive_failures: 2,
        window: 8,
        window_failures: 6,
        cooldown: Duration::from_millis(30),
    }
}

/// Sessions 1 and 3 pure hidden (layer 1 on device 1); session 2 with a
/// recompute prefix over layers 0–1, so its cached layers live only on
/// devices 2 and 3 — the unaffected control for a device-1 outage.
fn degraded_rig(breaker: BreakerConfig) -> DegradedRig {
    let cfg = ModelConfig::tiny_llama();
    let model = Model::new(&cfg, 31);
    let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(4))));
    let mgr = Arc::new(
        StorageManager::new(Arc::clone(&store), cfg.d_model)
            .with_device_health(Arc::new(DeviceHealth::with_config(4, breaker))),
    );
    let ctl = CacheController::new(
        Arc::clone(&mgr),
        cfg.n_layers,
        cfg.d_model,
        ControllerConfig::unlimited(),
    );
    let recompute_prefix = PartitionScheme {
        l_h: cfg.n_layers - 2,
        l_o: 2,
        complement: LayerMethod::Recompute,
    };
    let mut jobs = Vec::new();
    let mut references = std::collections::HashMap::new();
    for s in 1..=3u64 {
        let scheme = if s == 2 {
            recompute_prefix.clone()
        } else {
            PartitionScheme::pure_hidden(cfg.n_layers)
        };
        let methods = ctl.open_session(s, &scheme);
        let tokens: Vec<u32> = (0..DEG_TOKENS as u32)
            .map(|i| (i * 13 + s as u32) % 256)
            .collect();
        let mut kv = KvCache::new(&cfg);
        let out = model.prefill(&tokens, &mut kv, true);
        save_session_state(
            &model,
            &mgr,
            s,
            &out.hidden_per_layer.unwrap(),
            &kv,
            &scheme,
        )
        .unwrap();
        ctl.on_saved(s, DEG_TOKENS as u64).unwrap();
        let seq =
            restore_session_with_methods(&model, &mgr, s, &tokens, DEG_TOKENS, &methods).unwrap();
        references.insert(s, seq);
        jobs.push(RestoreJob { session: s, tokens });
    }
    DegradedRig {
        model,
        store,
        mgr,
        ctl,
        jobs,
        references,
    }
}

/// The mix a degraded pure-hidden session must have served: recompute for
/// the forced prefix, hidden for the survivors.
fn degraded_methods(prefix: usize, n_layers: usize) -> Vec<LayerMethod> {
    let mut v = vec![LayerMethod::Recompute; prefix];
    v.extend(std::iter::repeat_n(LayerMethod::Hidden, n_layers - prefix));
    v
}

/// Matrix row 6: a whole device hard-down mid-restore. No session fails:
/// the two pure-hidden sessions degrade layers 0..=1 to recompute
/// (bit-identical to a from-scratch restore of that surviving mix on the
/// same faulted store), the recompute-prefix session never notices, the
/// lane's breaker opens after the failures, and the session table keeps
/// the full-speed mixes (nothing is demoted by a device fault).
#[test]
fn device_down_mid_restore_degrades_affected_sessions_and_opens_the_breaker() {
    let r = degraded_rig(deg_breaker());
    r.store.device_down(1);
    let sched = RestoreScheduler::new(2, ParallelConfig::new(4));
    for (session, result) in sched.run_with_reports(&r.model, &r.ctl, &r.jobs) {
        let (kv, rep) =
            result.unwrap_or_else(|e| panic!("session {session} must degrade, not fail: {e}"));
        if session == 2 {
            assert_eq!(
                rep,
                DegradationReport::default(),
                "session 2's cached layers avoid device 1: it must not degrade"
            );
            assert_eq!(kv_max_error(&kv, &r.references[&session]), 0.0);
        } else {
            assert_eq!(
                rep.layers_recomputed, 2,
                "session {session}: layers 0..=1 must degrade over stranded layer 1"
            );
            assert!(
                matches!(
                    rep.cause,
                    Some(DegradeCause::DeviceDown { device: 1 })
                        | Some(DegradeCause::BreakerOpen { device: 1 })
                ),
                "session {session}: cause must name device 1, got {:?}",
                rep.cause
            );
            let seq = restore_session_with_methods(
                &r.model,
                &r.mgr,
                session,
                r.tokens_of(session),
                DEG_TOKENS,
                &degraded_methods(2, 4),
            )
            .expect("surviving mix avoids the dead lane");
            assert_eq!(
                kv_max_error(&kv, &seq),
                0.0,
                "session {session}: degraded restore must be bit-identical to the \
                 surviving-mix recompute"
            );
        }
    }
    assert_eq!(
        r.mgr.device_health().state(1),
        BreakerState::Open,
        "two permanent lane failures must open the breaker"
    );
    assert_eq!(
        r.store.reads_failed(),
        2,
        "exactly one failed read per affected session reaches the dead lane"
    );
    for s in [1u64, 3] {
        assert_eq!(
            r.ctl.session_methods(s).unwrap(),
            vec![LayerMethod::Hidden; 4],
            "device failure must never demote the session table"
        );
    }
    let m = r.ctl.metrics();
    assert_eq!(m.restores_degraded, 2);
    assert_eq!(m.layers_degraded, 4);
}

/// Matrix row 7: after the lane heals, the half-open probe closes the
/// breaker and every session is back to its full-speed mix, bit-identical
/// to the pre-fault references.
#[test]
fn half_open_probe_recovers_full_speed_after_heal() {
    let r = degraded_rig(deg_breaker());
    r.store.device_down(1);
    let sched = RestoreScheduler::new(2, ParallelConfig::new(4));
    for (session, result) in sched.run_with_reports(&r.model, &r.ctl, &r.jobs) {
        assert!(result.is_ok(), "session {session} must survive the outage");
    }
    assert_eq!(r.mgr.device_health().state(1), BreakerState::Open);

    // Heal the lane and let the cooldown pass: the next read through
    // device 1 is admitted as the half-open probe.
    r.store.device_up(1);
    std::thread::sleep(r.mgr.device_health().config().cooldown + Duration::from_millis(5));
    let par = ParallelConfig::serial();
    let (kv, rep) = r
        .ctl
        .restore_with_report(&r.model, 1, r.tokens_of(1), &par)
        .unwrap();
    assert_eq!(
        rep.layers_recomputed, 0,
        "the probe restore serves the full mix"
    );
    assert_eq!(kv_max_error(&kv, &r.references[&1]), 0.0);
    assert_eq!(
        r.mgr.device_health().state(1),
        BreakerState::Closed,
        "probe success must close the breaker"
    );

    // The whole batch runs full speed again.
    for (session, result) in sched.run_with_reports(&r.model, &r.ctl, &r.jobs) {
        let (kv, rep) = result.unwrap();
        assert_eq!(
            rep.layers_recomputed, 0,
            "healed lane: session {session} must serve its full mix"
        );
        assert_eq!(kv_max_error(&kv, &r.references[&session]), 0.0);
    }
}

/// The seeded chaos soak: a deterministic-schedule fault storm (whole
/// device down, seeded flaky reads, device stalls against the reactor's
/// IO deadline) over the reactor-routed scheduler. The gate: *zero*
/// failed sessions across every round, every degraded restore
/// bit-identical to a from-scratch restore of its surviving mix, and the
/// controller's degradation metrics agreeing exactly with the per-session
/// reports.
#[test]
fn seeded_chaos_soak_over_the_reactor_scheduler() {
    let cfg = ModelConfig::tiny_llama();
    let model = Model::new(&cfg, 31);
    let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(4))));
    let breaker = BreakerConfig {
        consecutive_failures: 4,
        window: 16,
        window_failures: 8,
        cooldown: Duration::from_millis(20),
    };
    let mgr = Arc::new(
        StorageManager::new(Arc::clone(&store), cfg.d_model)
            .with_device_health(Arc::new(DeviceHealth::with_config(4, breaker)))
            .with_retry_policy(RetryPolicy::default().with_io_deadline(Duration::from_millis(25)))
            .with_reactor(Reactor::new(4, 2)),
    );
    let ctl = CacheController::new(
        Arc::clone(&mgr),
        cfg.n_layers,
        cfg.d_model,
        ControllerConfig::unlimited(),
    );
    let scheme = PartitionScheme::pure_hidden(cfg.n_layers);
    let mut jobs = Vec::new();
    for s in 1..=6u64 {
        let methods = ctl.open_session(s, &scheme);
        let tokens: Vec<u32> = (0..DEG_TOKENS as u32)
            .map(|i| (i * 13 + s as u32) % 256)
            .collect();
        let mut kv = KvCache::new(&cfg);
        let out = model.prefill(&tokens, &mut kv, true);
        save_session_state(
            &model,
            &mgr,
            s,
            &out.hidden_per_layer.unwrap(),
            &kv,
            &scheme,
        )
        .unwrap();
        ctl.on_saved(s, DEG_TOKENS as u64).unwrap();
        restore_session_with_methods(&model, &mgr, s, &tokens, DEG_TOKENS, &methods).unwrap();
        jobs.push(RestoreJob { session: s, tokens });
    }
    let sched = RestoreScheduler::new(4, ParallelConfig::new(4)).with_reactor(8);

    // xorshift64: the fault schedule is a pure function of this seed, so
    // the soak replays identically run to run.
    let mut rng: u64 = 0x5EED_CAFE;
    let mut draw = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    let mut completed = 0usize;
    let mut degraded_restores = 0u64;
    let mut degraded_layers = 0u64;
    for round in 0..8 {
        let fault_kind = draw() % 4;
        let device = (draw() % 4) as usize;
        match fault_kind {
            0 => {} // calm round: breakers from earlier rounds may still act
            1 => store.device_down(device),
            2 => store.set_flaky_reads(FaultTarget::Any, 0.3, draw()),
            3 => store.stall_reads(FaultTarget::Device(device), Duration::from_millis(40)),
            _ => unreachable!(),
        }
        let results = sched.run_with_reports(&model, &ctl, &jobs);
        assert_eq!(
            results.len(),
            jobs.len(),
            "round {round}: a session vanished"
        );
        let mut round_reports = Vec::new();
        for (session, result) in results {
            match result {
                Ok((kv, rep)) => round_reports.push((session, kv, rep)),
                Err(e) => panic!(
                    "round {round} (fault {fault_kind} on device {device}): \
                     session {session} failed: {e}"
                ),
            }
        }
        completed += round_reports.len();

        // Heal everything and let tripped breakers pass their cooldown,
        // so the fidelity restores below are admitted (the first read
        // through a still-open lane rides as its half-open probe).
        for d in 0..4 {
            store.device_up(d);
        }
        store.clear_flaky_reads();
        store.clear_read_stalls();
        std::thread::sleep(breaker.cooldown + Duration::from_millis(2));

        for (session, kv, rep) in round_reports {
            if rep.layers_recomputed > 0 {
                degraded_restores += 1;
                degraded_layers += rep.layers_recomputed as u64;
                assert!(
                    rep.cause.is_some(),
                    "round {round}: degraded session {session} must name a cause"
                );
            } else {
                assert_eq!(rep.cause, None);
            }
            let methods = degraded_methods(rep.layers_recomputed, cfg.n_layers);
            let tokens = jobs
                .iter()
                .find(|j| j.session == session)
                .map(|j| j.tokens.as_slice())
                .unwrap();
            let seq =
                restore_session_with_methods(&model, &mgr, session, tokens, DEG_TOKENS, &methods)
                    .unwrap_or_else(|e| {
                        panic!("round {round}: fidelity restore of session {session} failed: {e}")
                    });
            assert_eq!(
                kv_max_error(&kv, &seq),
                0.0,
                "round {round}: session {session} must be bit-identical to a \
                 from-scratch restore of its surviving mix"
            );
        }
    }
    assert_eq!(
        completed,
        8 * jobs.len(),
        "zero failed sessions, all rounds"
    );
    let m = ctl.metrics();
    assert_eq!(
        m.restores_degraded, degraded_restores,
        "exact accounting: every degraded restore counted once"
    );
    assert_eq!(
        m.layers_degraded, degraded_layers,
        "exact accounting: every recomputed layer counted once"
    );
}
