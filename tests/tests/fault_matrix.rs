//! The executable fault matrix: every storage-fault class from the
//! `hc-storage` manager docs, driven through the full restore stack
//! (`FaultStore` → `StorageManager` → `CacheController` →
//! `RestoreScheduler`). The acceptance bar for each row: the fault
//! surfaces as a *typed* error naming the failing chunk and device, its
//! blast radius is exactly one session, and every sibling session
//! restores bit-identical to an unfaulted run.

use std::sync::Arc;
use std::time::Duration;

use hc_cachectl::scheduler::{RestoreJob, RestoreScheduler};
use hc_cachectl::{CacheController, ControllerConfig, CtlError};
use hc_model::{KvCache, Model, ModelConfig};
use hc_restore::engine::{kv_max_error, restore_session_with_methods, save_session_state};
use hc_sched::partition::PartitionScheme;
use hc_storage::backend::MemStore;
use hc_storage::chunk::ChunkKey;
use hc_storage::fault::{FaultStore, FaultTarget};
use hc_storage::manager::{StorageManager, READ_RETRY_ATTEMPTS};
use hc_storage::{StorageError, StreamId};
use hc_tensor::ParallelConfig;

const N_TOKENS: usize = 70;

type Store = FaultStore<MemStore>;

/// Three saved sessions over a fault-injecting store, with sequential
/// restore references captured *before* any fault is armed.
struct Rig {
    model: Model,
    store: Arc<Store>,
    mgr: Arc<StorageManager<Store>>,
    ctl: CacheController<Store>,
    jobs: Vec<RestoreJob>,
    references: std::collections::HashMap<u64, KvCache>,
}

fn rig() -> Rig {
    let cfg = ModelConfig::tiny_llama();
    let model = Model::new(&cfg, 31);
    let store = Arc::new(FaultStore::new(Arc::new(MemStore::new(4))));
    let mgr = Arc::new(StorageManager::new(Arc::clone(&store), cfg.d_model));
    let ctl = CacheController::new(
        Arc::clone(&mgr),
        cfg.n_layers,
        cfg.d_model,
        ControllerConfig::unlimited(),
    );
    let scheme = PartitionScheme::pure_hidden(cfg.n_layers);
    let mut jobs = Vec::new();
    let mut references = std::collections::HashMap::new();
    for s in 1..=3u64 {
        let methods = ctl.open_session(s, &scheme);
        let tokens: Vec<u32> = (0..N_TOKENS as u32)
            .map(|i| (i * 13 + s as u32) % 256)
            .collect();
        let mut kv = KvCache::new(&cfg);
        let out = model.prefill(&tokens, &mut kv, true);
        save_session_state(
            &model,
            &mgr,
            s,
            &out.hidden_per_layer.unwrap(),
            &kv,
            &scheme,
        )
        .unwrap();
        ctl.on_saved(s, N_TOKENS as u64).unwrap();
        let seq =
            restore_session_with_methods(&model, &mgr, s, &tokens, N_TOKENS, &methods).unwrap();
        references.insert(s, seq);
        jobs.push(RestoreJob { session: s, tokens });
    }
    Rig {
        model,
        store,
        mgr,
        ctl,
        jobs,
        references,
    }
}

fn run_sched(r: &Rig) -> Vec<(u64, Result<KvCache, CtlError>)> {
    RestoreScheduler::new(2, ParallelConfig::new(4)).run(&r.model, &r.ctl, &r.jobs)
}

fn assert_sibling_bit_identical(r: &Rig, session: u64, result: Result<KvCache, CtlError>) {
    let kv = result.unwrap_or_else(|e| panic!("healthy session {session} failed: {e}"));
    assert_eq!(
        kv_max_error(&kv, &r.references[&session]),
        0.0,
        "session {session} must restore bit-identical despite the sibling's fault"
    );
}

/// Matrix row 1: a permanent device read error fails exactly the faulted
/// session, with a typed error naming the chunk and its device lane.
#[test]
fn permanent_device_fault_fails_exactly_one_session() {
    let r = rig();
    // Every read of session 2's layer-1 hidden stream fails permanently.
    r.store.fail_reads(
        FaultTarget::Stream(StreamId::hidden(2, 1)),
        usize::MAX,
        false,
    );
    for (session, result) in run_sched(&r) {
        if session == 2 {
            match result {
                Err(CtlError::Storage(StorageError::DeviceFailed {
                    key,
                    transient: false,
                    ..
                })) => {
                    assert_eq!(key.stream.session, 2, "error must name the faulted stream");
                }
                other => panic!("expected a typed DeviceFailed, got {other:?}"),
            }
        } else {
            assert_sibling_bit_identical(&r, session, result);
        }
    }
}

/// Matrix row 2: transient device errors within the retry budget are
/// masked end to end — every session completes bit-identical.
#[test]
fn transient_device_faults_are_masked_end_to_end() {
    let r = rig();
    r.store
        .fail_reads(FaultTarget::Any, READ_RETRY_ATTEMPTS - 1, true);
    for (session, result) in run_sched(&r) {
        assert_sibling_bit_identical(&r, session, result);
    }
    assert_eq!(
        r.store.reads_failed() as usize,
        READ_RETRY_ATTEMPTS - 1,
        "the injected blips must actually have fired"
    );
}

/// Matrix row 3: a device write error surfaces typed from the save path,
/// naming the chunk whose write failed.
#[test]
fn device_write_fault_surfaces_typed_from_save() {
    let r = rig();
    let cfg = ModelConfig::tiny_llama();
    let scheme = PartitionScheme::pure_hidden(cfg.n_layers);
    r.ctl.open_session(9, &scheme);
    let victim = StreamId::hidden(9, 0);
    r.store.fail_writes(FaultTarget::Stream(victim), 1, false);
    let tokens: Vec<u32> = (0..N_TOKENS as u32).map(|i| (i * 7 + 9) % 256).collect();
    let mut kv = KvCache::new(&cfg);
    let out = r.model.prefill(&tokens, &mut kv, true);
    let err = save_session_state(
        &r.model,
        &r.mgr,
        9,
        &out.hidden_per_layer.unwrap(),
        &kv,
        &scheme,
    )
    .unwrap_err();
    match err {
        StorageError::DeviceFailed {
            key,
            transient: false,
            ..
        } => {
            assert_eq!(key.stream, victim);
            assert_eq!(
                key,
                ChunkKey {
                    stream: victim,
                    chunk_idx: 0
                }
            );
        }
        other => panic!("expected DeviceFailed from the save path, got {other:?}"),
    }
    assert_eq!(r.store.writes_failed(), 1);
}

/// Matrix row 4: a read stall delays but never fails — all sessions
/// complete bit-identical through a slow lane.
#[test]
fn stalled_device_reads_complete_bit_identical() {
    let r = rig();
    r.store
        .stall_reads(FaultTarget::Device(1), Duration::from_micros(300));
    for (session, result) in run_sched(&r) {
        assert_sibling_bit_identical(&r, session, result);
    }
}

/// Matrix row 5: a delete racing the restore run fails only the deleted
/// session with a typed storage error; siblings restore bit-identical.
#[test]
fn mid_restore_delete_race_fails_only_the_deleted_session() {
    let r = rig();
    let mgr2 = Arc::clone(&r.mgr);
    // Fire at the first chunk read of the scheduler run: session 2's
    // streams vanish while (or just before) its restore walks them.
    r.store.on_nth_read(0, move || {
        mgr2.delete_session(2);
    });
    for (session, result) in run_sched(&r) {
        if session == 2 {
            assert!(
                matches!(result, Err(CtlError::Storage(_))),
                "deleted session must fail typed, got {result:?}"
            );
        } else {
            assert_sibling_bit_identical(&r, session, result);
        }
    }
}

/// The typed propagation chain: a `DeviceFailed` keeps its chunk key and
/// device lane intact through `RestoreError` → `CtlError` →
/// `SystemError`.
#[test]
fn device_failed_payload_survives_the_error_chain() {
    let key = ChunkKey {
        stream: StreamId::hidden(4, 2),
        chunk_idx: 3,
    };
    let storage = StorageError::DeviceFailed {
        key,
        device: 1,
        transient: false,
        msg: "injected device read failure".into(),
    };
    let restore = hc_restore::engine::RestoreError::from(storage);
    let ctl = CtlError::from(restore);
    let system = hcache::SystemError::from(ctl);
    match system {
        hcache::SystemError::Storage(StorageError::DeviceFailed {
            key: k,
            device,
            transient,
            ..
        }) => {
            assert_eq!(k, key);
            assert_eq!(device, 1);
            assert!(!transient);
        }
        other => panic!("payload lost in the chain: {other:?}"),
    }
}
