//! The paper's headline quantitative claims, asserted end to end against
//! the calibrated models (abstract + §6):
//!
//! * TTFT up to 1.93× better than KV offload, up to 5.73× better than
//!   recomputation (long-context);
//! * storage 1.92–2.40× smaller than KV offload;
//! * TBT within ~4% of ideal;
//! * restoration speed 1.33–2.66× vs KV offload across hardware;
//! * HCache-O can lose to KV offload on IO-sufficient platforms, the
//!   bubble-free scheduler always wins (Fig 12).

use hc_model::ModelConfig;
use hc_restore::sim::{hcache_scheme, simulate_restore};
use hc_restore::RestoreMethod;
use hc_sched::shape_of;
use hc_serving::{ServingConfig, ServingEngine};
use hc_simhw::gpu::GpuSpec;
use hc_simhw::platform::Platform;
use hc_simhw::profile::PlatformProfile;
use hc_workload::arrival::schedule_sessions;
use hc_workload::sharegpt::{generate_sessions, ShareGptConfig};

fn paper_profile(cfg: &ModelConfig) -> PlatformProfile {
    let platform = if cfg.n_layers >= 48 {
        Platform::default_testbed_tp4()
    } else {
        Platform::default_testbed_single_gpu()
    };
    PlatformProfile::new(platform, shape_of(cfg))
}

#[test]
fn restoration_speedup_vs_kv_offload_within_paper_band() {
    // Abstract: TTFT up to 1.93x vs KV offload; §6.2: restoration speed
    // 1.33-2.66x across hardware. Check the restoration-speed band over
    // the sensitivity grid.
    let mut speedups = Vec::new();
    for cfg in ModelConfig::paper_models() {
        for n_ssds in [1usize, 2, 4] {
            let n_gpus = if cfg.n_layers >= 48 { 4 } else { 1 };
            let profile = PlatformProfile::new(
                Platform::a100_with_ssds(n_gpus, n_ssds * n_gpus),
                shape_of(&cfg),
            );
            let kv = simulate_restore(&profile, RestoreMethod::KvOffload, 4096).secs;
            let hc = simulate_restore(&profile, RestoreMethod::HCache, 4096).secs;
            speedups.push(kv / hc);
        }
    }
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().cloned().fold(0.0_f64, f64::max);
    assert!(min > 1.15, "HCache must always beat KV offload, min {min}");
    assert!(
        max > 1.6 && max < 3.2,
        "peak speedup {max} out of the paper's 1.33-2.66 band neighborhood"
    );
}

#[test]
fn restoration_speedup_vs_recompute_up_to_paper_scale() {
    // §6.2.1: 5.04-9.05x restoration speedup vs recomputation.
    let mut speedups = Vec::new();
    for cfg in ModelConfig::paper_models() {
        let profile = paper_profile(&cfg);
        for n in [1024u64, 8192] {
            let rec = simulate_restore(&profile, RestoreMethod::Recompute, n).secs;
            let hc = simulate_restore(&profile, RestoreMethod::HCache, n).secs;
            speedups.push(rec / hc);
        }
    }
    let max = speedups.iter().cloned().fold(0.0_f64, f64::max);
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(min > 2.0, "min recompute speedup {min}");
    assert!(max > 4.0 && max < 15.0, "max recompute speedup {max}");
}

#[test]
fn storage_saving_in_paper_band() {
    // Abstract: 1.92-2.40x less storage than KV offload.
    for cfg in ModelConfig::paper_models() {
        let profile = paper_profile(&cfg);
        let scheme = hcache_scheme(&profile, 1024);
        let hc = scheme.storage_bytes_per_token(cfg.d_model, cfg.elem_bytes);
        let kv = cfg.kv_bytes_per_token() as u64;
        let saving = kv as f64 / hc as f64;
        assert!(
            (1.6..=2.5).contains(&saving),
            "{}: saving {saving} outside band",
            cfg.name
        );
    }
}

#[test]
fn tbt_overhead_under_load_is_small() {
    // Abstract: <4% TBT overhead. Allow a little slack for the simulator's
    // conservative fusion accounting.
    let cfg = ModelConfig::llama2_7b();
    let profile = paper_profile(&cfg);
    let sessions = generate_sessions(40, &ShareGptConfig::default(), 3);
    let reqs = schedule_sessions(&sessions, 0.5, 300.0, 4);
    let tbt = |m: RestoreMethod| {
        ServingEngine::new(profile.clone(), ServingConfig::for_method(m))
            .run(&reqs)
            .mean_tbt()
    };
    let ideal = tbt(RestoreMethod::Ideal);
    let hc = tbt(RestoreMethod::HCache);
    let overhead = hc / ideal - 1.0;
    assert!(overhead < 0.08, "TBT overhead {overhead}");
}

#[test]
fn fig12_inversion_and_rescue() {
    // On the IO-sufficient platform (A30 + 4 SSDs), HCache-O loses its edge
    // (paper: 13% slower than KV offload); the full scheduler wins by
    // 1.45-2.66x over KV offload across all three settings.
    let settings = [
        (GpuSpec::a30(), ModelConfig::llama2_7b(), 4usize),
        (GpuSpec::a100(), ModelConfig::llama2_7b(), 1),
        (GpuSpec::a100(), ModelConfig::llama2_13b(), 4),
    ];
    for (gpu, cfg, ssds) in settings {
        let profile = PlatformProfile::new(
            Platform {
                name: "fig12".into(),
                gpu,
                n_gpus: 1,
                storage: hc_simhw::storagehw::StorageTier::SsdArray {
                    spec: hc_simhw::storagehw::SsdSpec::pm9a3(),
                    count: ssds,
                },
            },
            shape_of(&cfg),
        );
        let kv = simulate_restore(&profile, RestoreMethod::KvOffload, 1024).speed;
        let ho = simulate_restore(&profile, RestoreMethod::HCacheO, 1024).speed;
        let nh = simulate_restore(&profile, RestoreMethod::NaiveHybrid, 1024).speed;
        let hc = simulate_restore(&profile, RestoreMethod::HCache, 1024).speed;
        assert!(hc >= ho, "{}: scheduler must not hurt", cfg.name);
        assert!(hc > kv * 1.2, "{}: HCache vs KV {}", cfg.name, hc / kv);
        assert!(hc > nh, "{}: HCache must beat naive hybrid", cfg.name);
    }
    // The characteristic inversion on A30+4SSD.
    let io_sufficient = PlatformProfile::new(
        Platform {
            name: "A30".into(),
            gpu: GpuSpec::a30(),
            n_gpus: 1,
            storage: hc_simhw::storagehw::StorageTier::default_testbed(),
        },
        shape_of(&ModelConfig::llama2_7b()),
    );
    let kv = simulate_restore(&io_sufficient, RestoreMethod::KvOffload, 1024).speed;
    let ho = simulate_restore(&io_sufficient, RestoreMethod::HCacheO, 1024).speed;
    let hc = simulate_restore(&io_sufficient, RestoreMethod::HCache, 1024).speed;
    // Paper measures HCache-O 13% *slower* than KV offload here; our A30
    // calibration lands it marginally ahead — the load-bearing fact is that
    // the scheduler's rescue margin dwarfs whatever edge HCache-O has.
    assert!(
        ho < kv * 1.15,
        "HCache-O should be at best marginal vs KV offload here: {} vs {}",
        ho,
        kv
    );
    assert!(
        hc / ho > 1.2,
        "the scheduler's rescue must be substantial: {} vs {}",
        hc,
        ho
    );
}

#[test]
fn table3_schedules_match_paper() {
    // Paper Table 3: 7B = 31H+1KV; 13B = 36H+4KV; 30B = 40H+8RE.
    // Allow ±2 layers of drift from calibration differences.
    let expect = [(31usize, 32usize), (36, 40), (40, 48)];
    for (cfg, (l_h_paper, n_layers)) in ModelConfig::paper_models().iter().zip(expect) {
        let profile = paper_profile(cfg);
        let scheme = hcache_scheme(&profile, 1024);
        assert_eq!(scheme.l_h + scheme.l_o, n_layers);
        let drift = (scheme.l_h as i64 - l_h_paper as i64).abs();
        assert!(
            drift <= 2,
            "{}: schedule {} H differs from paper {} by {drift}",
            cfg.name,
            scheme.l_h,
            l_h_paper
        );
    }
}

#[test]
fn ttft_speedups_on_serving_path() {
    // §6.1.1: HCache TTFT 1.27-1.90x vs KV offload, 2.21-3.57x vs
    // recompute on ShareGPT4.
    let cfg = ModelConfig::llama2_7b();
    let profile = paper_profile(&cfg);
    // The paper's Fig 9 regime is below GPU saturation (TTFT stays in the
    // 0.1-0.3s range); at saturation, KV offload's compute-free restoration
    // genuinely wins GPU seconds, which Fig 9 does not exercise.
    let sessions = generate_sessions(40, &ShareGptConfig::default(), 9);
    let reqs = schedule_sessions(&sessions, 0.25, 400.0, 10);
    let ttft = |m: RestoreMethod| {
        ServingEngine::new(profile.clone(), ServingConfig::for_method(m))
            .run(&reqs)
            .mean_ttft()
    };
    let rec = ttft(RestoreMethod::Recompute);
    let kv = ttft(RestoreMethod::KvOffload);
    let hc = ttft(RestoreMethod::HCache);
    let vs_kv = kv / hc;
    let vs_rec = rec / hc;
    assert!((1.05..2.2).contains(&vs_kv), "vs KV offload: {vs_kv}");
    // Paper band is 2.21-3.57x; recompute queues harder in our simulator
    // once several long histories overlap, so allow up to 6x.
    assert!((1.8..6.0).contains(&vs_rec), "vs recompute: {vs_rec}");
}
