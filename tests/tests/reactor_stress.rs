//! Reactor stress: ten thousand concurrent restores through
//! `RestoreScheduler` on a 4-thread host grant. What the event-driven IO
//! plane must guarantee at this scale:
//!
//! * the batch completes with every healthy session's `KvCache` exactly
//!   matching its saved state (`kv_max_error == 0` against the prefill
//!   reference of its token pattern);
//! * in-flight restores are bounded by the admission window, not by the
//!   thread grant — the peak gauge lands far above 4 workers and at or
//!   under `max_inflight`, which is the point of the reactor;
//! * one failed session's blast radius is itself: an unknown session and
//!   a session whose stored stream was deleted both fail typed, and the
//!   other 9 999 restores succeed untouched;
//! * the gauges close the books: in-flight drains to zero, admissions
//!   equal completions.

use std::sync::Arc;

use hc_cachectl::scheduler::{RestoreJob, RestoreScheduler};
use hc_cachectl::{CacheController, ControllerConfig};
use hc_model::{KvCache, Model, ModelConfig};
use hc_restore::engine::{kv_max_error, restore_session_with_methods, save_session_state};
use hc_sched::partition::{LayerMethod, PartitionScheme};
use hc_storage::backend::MemStore;
use hc_storage::manager::StorageManager;
use hc_storage::reactor::Reactor;
use hc_storage::StreamId;
use hc_tensor::ParallelConfig;

const N_SESSIONS: u64 = 10_000;
const N_PATTERNS: u64 = 16;
/// Exactly one full chunk per stream: every restore's state is durable in
/// the backend and must come back through the device queues, not from an
/// in-memory tail.
const N_TOKENS: usize = 64;
const MAX_INFLIGHT: usize = 512;

fn pattern_tokens(pattern: u64) -> Vec<u32> {
    (0..N_TOKENS as u32)
        .map(|i| (i * 37 + pattern as u32 * 11 + 3) % 256)
        .collect()
}

#[test]
fn ten_thousand_restores_on_a_four_thread_grant() {
    // Two layers at width 32: small enough that 10k sessions of saved
    // state fit comfortably, with the same code paths as the full model.
    let cfg_m = ModelConfig {
        n_layers: 2,
        d_model: 32,
        n_heads: 2,
        d_ff: 64,
        ..ModelConfig::tiny_llama()
    };
    let model = Model::new(&cfg_m, 17);
    let reactor = Reactor::new(4, 4);
    let mgr = Arc::new(
        StorageManager::new(Arc::new(MemStore::new(4)), cfg_m.d_model)
            .with_reactor(Arc::clone(&reactor)),
    );
    let ctl = CacheController::new(
        Arc::clone(&mgr),
        cfg_m.n_layers,
        cfg_m.d_model,
        ControllerConfig::unlimited(),
    );
    // Pure KV offload: restores are IO-bound state machines with no
    // recompute prefix, the regime the reactor exists for.
    let scheme = PartitionScheme {
        l_h: 0,
        l_o: cfg_m.n_layers,
        complement: LayerMethod::KvOffload,
    };

    // One prefill per token pattern; every session of a pattern saves the
    // same state under its own streams. The reference is the *sequential*
    // restore of the pattern's first session — the bit-identity target.
    let references: Vec<KvCache> = (0..N_PATTERNS)
        .map(|p| {
            let mut kv = KvCache::new(&cfg_m);
            let out = model.prefill(&pattern_tokens(p), &mut kv, true);
            let hidden = out.hidden_per_layer.unwrap();
            let mut methods = Vec::new();
            for s in (p..N_SESSIONS).step_by(N_PATTERNS as usize) {
                methods = ctl.open_session(s, &scheme);
                save_session_state(&model, &mgr, s, &hidden, &kv, &scheme).unwrap();
                ctl.on_saved(s, N_TOKENS as u64).unwrap();
            }
            restore_session_with_methods(&model, &mgr, p, &pattern_tokens(p), N_TOKENS, &methods)
                .unwrap()
        })
        .collect();

    // Blast-radius probes: a session that was never opened, and one whose
    // stored key stream vanished after the save.
    let wounded = 4_567u64;
    mgr.delete_stream(StreamId::key(wounded, 1));
    let mut jobs: Vec<RestoreJob> = (0..N_SESSIONS)
        .map(|s| RestoreJob {
            session: s,
            tokens: pattern_tokens(s % N_PATTERNS),
        })
        .collect();
    jobs.push(RestoreJob {
        session: N_SESSIONS, // never opened
        tokens: pattern_tokens(0),
    });

    let sched = RestoreScheduler::new(4, ParallelConfig::new(4)).with_reactor(MAX_INFLIGHT);
    let results = sched.run(&model, &ctl, &jobs);
    assert_eq!(results.len(), jobs.len());

    let mut ok = 0usize;
    for (session, outcome) in results {
        if session == wounded || session == N_SESSIONS {
            assert!(
                outcome.is_err(),
                "session {session} lost its state and must fail typed"
            );
            continue;
        }
        let kv = outcome.unwrap_or_else(|e| panic!("session {session} failed: {e}"));
        let reference = &references[(session % N_PATTERNS) as usize];
        assert_eq!(
            kv_max_error(&kv, reference),
            0.0,
            "session {session} diverged from its saved state"
        );
        ok += 1;
    }
    assert_eq!(ok as u64, N_SESSIONS - 1, "exactly the two probes may fail");

    // The scale claim: thousands in flight from 4 threads, bounded by the
    // admission window, with the books closed afterwards.
    assert!(
        reactor.peak_restores_in_flight() > sched.host_budget().threads() as u64,
        "peak in-flight ({}) should dwarf the {}-thread grant",
        reactor.peak_restores_in_flight(),
        sched.host_budget().threads()
    );
    assert!(
        reactor.peak_restores_in_flight() <= MAX_INFLIGHT as u64,
        "admission window must bound in-flight restores"
    );
    assert_eq!(reactor.restores_in_flight(), 0, "gauge must drain");
    assert_eq!(
        reactor.restores_admitted_total(),
        reactor.restores_completed_total(),
        "every admitted restore must complete"
    );
    // The unknown session may be rejected at the controller before it is
    // ever admitted; every session that got in is accounted for.
    assert!(reactor.restores_admitted_total() >= N_SESSIONS);
    assert!(
        reactor.ios_submitted() > 0,
        "IO must ride the device queues"
    );
}
