//! Integration of profiler → partition → pipeline → functional engine:
//! the scheme picked by the *timed* scheduler must drive the *functional*
//! engine correctly, and the pipeline math must stay consistent across the
//! hardware grid.

use std::sync::Arc;

use hc_model::{KvCache, Model, ModelConfig};
use hc_restore::engine::{kv_max_error, restore_session, save_session_state};
use hc_restore::sim::{analytic_makespan, hcache_scheme, simulate_restore};
use hc_restore::RestoreMethod;
use hc_sched::partition::{LayerMethod, PartitionScheme};
use hc_sched::pipeline::simulate_scheme;
use hc_sched::shape_of;
use hc_simhw::gpu::GpuSpec;
use hc_simhw::platform::Platform;
use hc_simhw::profile::PlatformProfile;
use hc_storage::backend::MemStore;
use hc_storage::manager::StorageManager;

#[test]
fn scheduler_scheme_drives_functional_engine() {
    // Pick a scheme with the real scheduler on real hardware profiles, then
    // rescale it to the tiny model and run the functional engine with it.
    let profiles = [
        PlatformProfile::new(
            Platform::a100_with_ssds(1, 1),
            shape_of(&ModelConfig::llama2_13b()),
        ),
        PlatformProfile::new(
            Platform::dram_backed(GpuSpec::a30(), 1),
            shape_of(&ModelConfig::llama2_7b()),
        ),
    ];
    let cfg = ModelConfig::tiny_llama();
    for profile in profiles {
        let full_scheme = hcache_scheme(&profile, 1024);
        // Rescale the layer split onto the 4-layer test model.
        let frac_h = full_scheme.l_h as f64 / profile.shape.n_layers as f64;
        let l_h = ((cfg.n_layers as f64 * frac_h).round() as usize).clamp(0, cfg.n_layers);
        let scheme = PartitionScheme {
            l_h,
            l_o: cfg.n_layers - l_h,
            complement: if l_h == cfg.n_layers {
                LayerMethod::Hidden
            } else {
                full_scheme.complement
            },
        };
        let model = Model::new(&cfg, 5);
        let mgr = StorageManager::new(Arc::new(MemStore::new(4)), cfg.d_model);
        let tokens: Vec<u32> = (0..96u32).map(|i| i % 256).collect();
        let mut kv = KvCache::new(&cfg);
        let out = model.prefill(&tokens, &mut kv, true);
        save_session_state(
            &model,
            &mgr,
            1,
            &out.hidden_per_layer.unwrap(),
            &kv,
            &scheme,
        )
        .unwrap();
        let restored = restore_session(&model, &mgr, 1, &tokens, tokens.len(), &scheme).unwrap();
        let err = kv_max_error(&restored, &kv);
        assert!(err < 0.05, "{scheme:?}: error {err}");
    }
}

#[test]
fn pipeline_total_bounded_by_analytic_makespan_plus_fill() {
    // Across a grid of hardware, the explicit pipeline differs from the
    // idealized min-max objective only by pipeline-fill effects.
    for gpu in GpuSpec::table2() {
        for cfg in [ModelConfig::llama2_7b(), ModelConfig::llama2_13b()] {
            let profile =
                PlatformProfile::new(Platform::dram_backed(gpu.clone(), 1), shape_of(&cfg));
            for n in [512u64, 4096] {
                let scheme = hcache_scheme(&profile, n);
                let costs = profile.layer_costs(n);
                let pipeline = simulate_scheme(&costs, &scheme, cfg.n_layers).total;
                let analytic = analytic_makespan(&profile, &scheme, n);
                assert!(pipeline >= analytic - 1e-12);
                let fill = costs.io_h + costs.c_h + costs.c_token;
                assert!(
                    pipeline <= analytic + fill + 1e-9,
                    "{} on {}: pipeline {pipeline} vs analytic {analytic}",
                    cfg.name,
                    gpu.name
                );
            }
        }
    }
}

#[test]
fn hcache_dominates_both_pure_methods_across_grid() {
    // The scheduler may fall back to (nearly) pure methods but must never
    // be meaningfully *worse* than either pure baseline anywhere.
    for gpu in GpuSpec::table2() {
        for cfg in ModelConfig::paper_models() {
            let profile =
                PlatformProfile::new(Platform::dram_backed(gpu.clone(), 1), shape_of(&cfg));
            let hc = simulate_restore(&profile, RestoreMethod::HCache, 2048).secs;
            let kv = simulate_restore(&profile, RestoreMethod::KvOffload, 2048).secs;
            let rec = simulate_restore(&profile, RestoreMethod::Recompute, 2048).secs;
            let slack = 1.05;
            assert!(
                hc <= kv * slack && hc <= rec * slack,
                "{} on {}: hc {hc} kv {kv} rec {rec}",
                cfg.name,
                gpu.name
            );
        }
    }
}

#[test]
fn schedule_shifts_with_hardware_balance() {
    // More compute (H800) or less IO (1 SSD) must shift the schedule
    // toward hidden states + recompute; more IO toward KV offload.
    let cfg = ModelConfig::llama2_13b();
    let compute_rich =
        PlatformProfile::new(Platform::dram_backed(GpuSpec::h800(), 1), shape_of(&cfg));
    let io_poor = PlatformProfile::new(Platform::a100_with_ssds(1, 1), shape_of(&cfg));
    let s_rich = hcache_scheme(&compute_rich, 1024);
    let s_poor = hcache_scheme(&io_poor, 1024);
    // Compute-rich with DRAM: compute fast relative to IO -> recompute
    // complement (or pure hidden).
    assert_ne!(
        s_rich.complement,
        LayerMethod::KvOffload,
        "H800+DRAM should not need KV offload fill: {s_rich:?}"
    );
    // IO-poor: also recompute complement, but with more recompute layers.
    assert_eq!(s_poor.complement, LayerMethod::Recompute);
    assert!(s_poor.l_o >= s_rich.l_o, "{s_poor:?} vs {s_rich:?}");
}

#[test]
fn tp_group_restores_faster_than_single_gpu() {
    // §5 multi-GPU: sharded reads + all-gather should scale restoration.
    let cfg = ModelConfig::opt_30b();
    let single = PlatformProfile::new(Platform::dram_backed(GpuSpec::a100(), 1), shape_of(&cfg));
    let tp4 = PlatformProfile::new(Platform::dram_backed(GpuSpec::a100(), 4), shape_of(&cfg));
    let s1 = simulate_restore(&single, RestoreMethod::HCache, 4096).speed;
    let s4 = simulate_restore(&tp4, RestoreMethod::HCache, 4096).speed;
    assert!(s4 > 2.5 * s1, "TP4 should scale restoration: {s1} -> {s4}");
}
