//! Integration of workload generation → serving engine: real traces end to
//! end, property-style invariants over the serving simulation.

use hc_model::ModelConfig;
use hc_restore::RestoreMethod;
use hc_sched::shape_of;
use hc_serving::{ServingConfig, ServingEngine};
use hc_simhw::platform::Platform;
use hc_simhw::profile::PlatformProfile;
use hc_workload::arrival::schedule_sessions;
use hc_workload::leval::{generate_requests, QUALITY};
use hc_workload::sharegpt::{generate_sessions, ShareGptConfig};
use proptest::prelude::*;

fn profile_7b() -> PlatformProfile {
    PlatformProfile::new(
        Platform::default_testbed_single_gpu(),
        shape_of(&ModelConfig::llama2_7b()),
    )
}

#[test]
fn sharegpt_trace_completes_for_all_methods() {
    let sessions = generate_sessions(30, &ShareGptConfig::default(), 17);
    let reqs = schedule_sessions(&sessions, 0.3, 300.0, 18);
    let n = reqs.len();
    assert!(n > 10, "trace too small: {n}");
    for m in [
        RestoreMethod::Ideal,
        RestoreMethod::Recompute,
        RestoreMethod::KvOffload,
        RestoreMethod::HCacheO,
        RestoreMethod::NaiveHybrid,
        RestoreMethod::HCache,
    ] {
        let engine = ServingEngine::new(profile_7b(), ServingConfig::for_method(m));
        let report = engine.run(&reqs);
        assert_eq!(report.requests.len(), n, "{m:?} dropped requests");
        for r in &report.requests {
            assert!(r.first_token >= r.arrival);
            assert!(r.completion >= r.first_token);
        }
    }
}

#[test]
fn later_rounds_restore_more_tokens() {
    // In multi-round sessions, restored token counts grow with round index.
    let sessions = generate_sessions(20, &ShareGptConfig::default(), 23);
    let reqs = schedule_sessions(&sessions, 0.2, 400.0, 24);
    let engine = ServingEngine::new(
        profile_7b(),
        ServingConfig::for_method(RestoreMethod::HCache),
    );
    let report = engine.run(&reqs);
    // Group by session, check restored_tokens are non-decreasing.
    for s in &sessions {
        let mut mine: Vec<_> = report
            .requests
            .iter()
            .filter(|r| r.session_id == s.id)
            .collect();
        mine.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        for w in mine.windows(2) {
            assert!(
                w[1].restored_tokens >= w[0].restored_tokens,
                "session {}: restored shrank",
                s.id
            );
        }
    }
}

#[test]
fn leval_batch1_hcache_wins_on_every_request() {
    let mut reqs = generate_requests(&QUALITY, 15, 16 * 1024 - 512, 31);
    for (i, r) in reqs.iter_mut().enumerate() {
        r.arrival = i as f64 * 500.0;
        r.session_id = i as u64;
    }
    let run = |m| ServingEngine::new(profile_7b(), ServingConfig::for_method(m)).run(&reqs);
    let kv = run(RestoreMethod::KvOffload);
    let hc = run(RestoreMethod::HCache);
    for (a, b) in kv.requests.iter().zip(hc.requests.iter()) {
        assert!(
            b.ttft() < a.ttft(),
            "request {}: HCache {} vs KV {}",
            a.session_id,
            b.ttft(),
            a.ttft()
        );
    }
}

#[test]
fn throughput_ordering_under_saturation() {
    // Under heavy load the cheaper restoration method completes at least
    // as many requests per second.
    let sessions = generate_sessions(60, &ShareGptConfig::default(), 41);
    let reqs = schedule_sessions(&sessions, 2.0, 120.0, 42);
    let tput = |m| {
        ServingEngine::new(profile_7b(), ServingConfig::for_method(m))
            .run(&reqs)
            .throughput()
    };
    let hc = tput(RestoreMethod::HCache);
    let rec = tput(RestoreMethod::Recompute);
    assert!(hc >= rec * 0.99, "HCache {hc} vs recompute {rec}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn serving_invariants_hold_for_random_small_traces(
        seed in 0u64..1000,
        rate_centi in 5u64..200,
        n_sessions in 3usize..15,
    ) {
        let sessions = generate_sessions(n_sessions, &ShareGptConfig::default(), seed);
        let reqs = schedule_sessions(&sessions, rate_centi as f64 / 100.0, 120.0, seed + 1);
        let engine = ServingEngine::new(
            profile_7b(),
            ServingConfig::for_method(RestoreMethod::HCache),
        );
        let report = engine.run(&reqs);
        prop_assert_eq!(report.requests.len(), reqs.len());
        for r in &report.requests {
            prop_assert!(r.first_token >= r.arrival);
            prop_assert!(r.completion >= r.first_token);
            if let Some(tbt) = r.tbt() {
                prop_assert!(tbt > 0.0 && tbt < 1.0, "absurd TBT {}", tbt);
            }
        }
        // Virtual time advances monotonically past the last arrival.
        if let Some(last) = reqs.last() {
            prop_assert!(report.makespan >= last.arrival);
        }
    }
}
