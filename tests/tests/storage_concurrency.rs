//! Stress tests for the sharded storage manager: readers × appenders × a
//! deleter on distinct and shared streams.
//!
//! What the sharded locking discipline must guarantee under fire:
//! * reads are **bit-identical** to the deterministic data written (f16
//!   round-trip of known row values), at every prefix length observed —
//!   including chunk-fanout reads at every width (the fanout path shares
//!   the decode/copy helpers with the sequential one, and these tests pin
//!   that);
//! * no deadlocks — every scope here joins (the suite would hang, and CI
//!   time out, if lock order were violated);
//! * a delete followed by a re-append that reuses the same chunk keys
//!   **with identical sizes** never leaks a mixed-generation read — only
//!   the post-IO tombstone revalidation can catch that case (the
//!   OutOfRange guard can't, since the sizes line up);
//! * the byte accounting never drifts: the atomic aggregate equals the
//!   per-stream sum once the dust settles, and deleting everything frees
//!   exactly the tracked figure.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hc_storage::backend::MemStore;
use hc_storage::manager::{DeliveredRows, RowSink, StorageManager};
use hc_storage::reactor::Reactor;
use hc_storage::StreamId;
use hc_tensor::f16::f16_roundtrip;
use hc_tensor::Tensor2;

const D: usize = 16;

/// Reassembles a streaming read the way a consumer would: chunks placed at
/// their row offsets, everything discarded on a tombstone reset.
#[derive(Default)]
struct CollectSink {
    delivered: Vec<DeliveredRows>,
    resets: usize,
}

impl CollectSink {
    fn assembled(&self, n_rows: usize) -> Tensor2 {
        let mut out = Tensor2::zeros(n_rows, D);
        for c in &self.delivered {
            for r in 0..c.rows.rows() {
                out.row_mut(c.row_start + r).copy_from_slice(c.rows.row(r));
            }
        }
        out
    }
}

impl RowSink for CollectSink {
    fn deliver(&mut self, chunk: DeliveredRows) -> bool {
        self.delivered.push(chunk);
        true
    }

    fn reset(&mut self) {
        self.delivered.clear();
        self.resets += 1;
    }
}

/// Deterministic row content: any thread can verify any (stream, token)
/// cell without coordination.
fn cell(stream: StreamId, token: u64, col: usize) -> f32 {
    let h = stream.session * 31 + stream.layer as u64 * 7 + token * 13 + col as u64;
    (h % 97) as f32 * 0.25 - 12.0
}

fn rows_for(stream: StreamId, start: u64, n: usize) -> Tensor2 {
    Tensor2::from_fn(n, D, |r, c| cell(stream, start + r as u64, c))
}

fn assert_prefix_bit_identical(got: &Tensor2, stream: StreamId, start: u64) {
    for r in 0..got.rows() {
        for c in 0..D {
            assert_eq!(
                got.get(r, c),
                f16_roundtrip(cell(stream, start + r as u64, c)),
                "{stream:?} token {} col {c} corrupted",
                start + r as u64
            );
        }
    }
}

/// Readers verify streams that appenders are actively extending (shared
/// streams), while other readers verify each other's finished streams
/// (distinct streams), and a deleter churns victim streams the whole time.
#[test]
fn readers_appenders_deleter_stress() {
    let mgr = Arc::new(StorageManager::new(Arc::new(MemStore::new(4)), D));
    let stop = AtomicBool::new(false);
    let deleted_freed = AtomicU64::new(0);

    // Streams 0..4 under session 1: appended concurrently, read concurrently.
    let shared: Vec<StreamId> = (0..4).map(|l| StreamId::hidden(1, l)).collect();
    // Victim streams under session 2: append/flush/delete churn.
    let victims: Vec<StreamId> = (0..2).map(|l| StreamId::hidden(2, l)).collect();

    const APPEND_BATCHES: usize = 60;
    const BATCH: usize = 10; // crosses chunk boundaries regularly

    std::thread::scope(|scope| {
        // Appenders: one per shared stream, deterministic content, periodic
        // flushes so readers also see flushed-tail rewrites.
        for &s in &shared {
            let mgr = Arc::clone(&mgr);
            scope.spawn(move || {
                for b in 0..APPEND_BATCHES {
                    let start = (b * BATCH) as u64;
                    mgr.append_rows(s, &rows_for(s, start, BATCH)).unwrap();
                    if b % 5 == 4 {
                        mgr.flush_stream(s).unwrap();
                    }
                }
            });
        }

        // Readers: snapshot the current length, read the whole prefix, and
        // demand bit-identity. The prefix observed only ever grows.
        for &s in &shared {
            for _ in 0..2 {
                let mgr = Arc::clone(&mgr);
                let stop = &stop;
                scope.spawn(move || {
                    let mut seen = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let n = mgr.n_tokens(s);
                        assert!(n >= seen, "stream length went backwards");
                        seen = n;
                        let got = mgr.read_rows(s, 0, n).unwrap();
                        assert_prefix_bit_identical(&got, s, 0);
                        // Also a random-ish interior window.
                        if n > 20 {
                            let mid = mgr.read_rows(s, n / 3, n - 5).unwrap();
                            assert_prefix_bit_identical(&mid, s, n / 3);
                        }
                    }
                });
            }
        }

        // Victim churn: an appender and a deleter race on the same streams.
        // Every byte the deleter frees is tallied; the final sweep picks up
        // whatever survived.
        let victim_appender = Arc::clone(&mgr);
        let stop_ref = &stop;
        let victims_ref = &victims;
        scope.spawn(move || {
            let mut b = 0u64;
            while !stop_ref.load(Ordering::Relaxed) {
                for &v in victims_ref {
                    // Content correctness for victims is covered by the
                    // restart semantics: after any delete the stream
                    // restarts at token 0, so absolute tokens are
                    // unknowable here — byte accounting is the target.
                    victim_appender.append_rows(v, &rows_for(v, b, 32)).unwrap();
                    victim_appender.flush_stream(v).unwrap();
                }
                b += 32;
            }
        });
        let victim_deleter = Arc::clone(&mgr);
        let freed_ref = &deleted_freed;
        scope.spawn(move || {
            while !stop_ref.load(Ordering::Relaxed) {
                for &v in victims_ref {
                    freed_ref.fetch_add(victim_deleter.delete_stream(v), Ordering::Relaxed);
                }
                std::thread::yield_now();
            }
        });

        // Let the churn overlap the appends, then wind down.
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });

    // Dust settled: every shared stream holds its full prefix, bit-identical.
    for &s in &shared {
        assert_eq!(mgr.n_tokens(s), (APPEND_BATCHES * BATCH) as u64);
        let got = mgr
            .read_rows(s, 0, (APPEND_BATCHES * BATCH) as u64)
            .unwrap();
        assert_prefix_bit_identical(&got, s, 0);
    }

    // Accounting: the lock-free aggregate equals the per-stream sum...
    let per_stream_sum: u64 = mgr.sessions().iter().map(|&s| mgr.session_bytes(s)).sum();
    assert_eq!(mgr.total_resident_bytes(), per_stream_sum);

    // ...and deleting everything frees exactly the tracked figure, so the
    // bytes ever freed equal the bytes ever resident.
    let final_freed: u64 = mgr.sessions().iter().map(|&s| mgr.delete_session(s)).sum();
    assert_eq!(final_freed, per_stream_sum);
    assert_eq!(mgr.total_resident_bytes(), 0);
    // A second sweep finds nothing: the backend is really empty.
    assert_eq!(mgr.delete_session(1) + mgr.delete_session(2), 0);
    // Every byte the deleter freed mid-run was a whole f16 row's worth.
    assert!(deleted_freed
        .load(Ordering::Relaxed)
        .is_multiple_of(D as u64 * 2));
}

/// Concurrent readers of one stream being extended and tail-flushed by one
/// appender: every observed prefix is bit-identical, and reads past the
/// snapshot are rejected, never torn.
#[test]
fn shared_stream_reads_are_consistent_prefixes() {
    let mgr = Arc::new(StorageManager::new(Arc::new(MemStore::new(2)), D));
    let s = StreamId::hidden(9, 0);
    std::thread::scope(|scope| {
        let writer = {
            let mgr = Arc::clone(&mgr);
            scope.spawn(move || {
                for b in 0..200u64 {
                    mgr.append_rows(s, &rows_for(s, b * 7, 7)).unwrap();
                    mgr.flush_stream(s).unwrap();
                }
            })
        };
        for _ in 0..3 {
            let mgr = Arc::clone(&mgr);
            scope.spawn(move || loop {
                let n = mgr.n_tokens(s);
                if n > 0 {
                    let got = mgr.read_rows(s, 0, n).unwrap();
                    assert_prefix_bit_identical(&got, s, 0);
                }
                if n >= 200 * 7 {
                    break;
                }
            });
        }
        writer.join().unwrap();
    });
    assert_eq!(mgr.n_tokens(s), 1400);
    // All 1400 rows are flushed, so delete frees exactly their f16 bytes.
    assert_eq!(mgr.delete_stream(s), 1400 * D as u64 * 2);
}

/// Chunk-fanout reads vs sequential reads at widths 1–8, while appenders
/// are actively extending the streams: every observed prefix must be
/// bit-identical to the deterministic content (what a sequential read
/// returns), and a final full read through a fanout manager must equal
/// the same data read through a no-fanout manager, bit for bit.
#[test]
fn fanout_reads_bit_identical_to_sequential_at_widths_1_to_8_under_appenders() {
    const BATCHES: u64 = 40;
    const BATCH: usize = 10; // crosses chunk boundaries regularly
    for width in 1..=8usize {
        let mgr =
            Arc::new(StorageManager::new(Arc::new(MemStore::new(4)), D).with_read_fanout(width));
        let streams: Vec<StreamId> = (0..2).map(|l| StreamId::hidden(width as u64, l)).collect();
        std::thread::scope(|scope| {
            for &s in &streams {
                let mgr = Arc::clone(&mgr);
                scope.spawn(move || {
                    for b in 0..BATCHES {
                        mgr.append_rows(s, &rows_for(s, b * BATCH as u64, BATCH))
                            .unwrap();
                        if b % 4 == 3 {
                            mgr.flush_stream(s).unwrap();
                        }
                    }
                });
            }
            for &s in &streams {
                let mgr = Arc::clone(&mgr);
                scope.spawn(move || loop {
                    let n = mgr.n_tokens(s);
                    let got = mgr.read_rows(s, 0, n).unwrap();
                    assert_prefix_bit_identical(&got, s, 0);
                    if n >= BATCHES * BATCH as u64 {
                        break;
                    }
                });
            }
        });
        // Cross-check against a sequential (no-fanout) manager holding the
        // same deterministic content.
        let seq = StorageManager::new(Arc::new(MemStore::new(4)), D);
        for &s in &streams {
            let total = BATCHES * BATCH as u64;
            seq.append_rows(s, &rows_for(s, 0, total as usize)).unwrap();
            assert_eq!(
                mgr.read_rows(s, 0, total).unwrap(),
                seq.read_rows(s, 0, total).unwrap(),
                "width {width} diverged from the sequential read of {s:?}"
            );
        }
    }
}

/// Chunk-streaming reads vs sequential `read_rows` at widths 1–8 while
/// appenders actively extend the streams: every streamed prefix must
/// reassemble bit-identically to what `read_rows` returns for the same
/// range (the assembled tensor partitions the range — each row delivered
/// exactly once), at every fanout width.
#[test]
fn streaming_reads_bit_identical_to_read_rows_at_widths_1_to_8_under_appenders() {
    const BATCHES: u64 = 40;
    const BATCH: usize = 10; // crosses chunk boundaries regularly
    for width in 1..=8usize {
        let mgr =
            Arc::new(StorageManager::new(Arc::new(MemStore::new(4)), D).with_read_fanout(width));
        let streams: Vec<StreamId> = (0..2)
            .map(|l| StreamId::hidden(100 + width as u64, l))
            .collect();
        std::thread::scope(|scope| {
            for &s in &streams {
                let mgr = Arc::clone(&mgr);
                scope.spawn(move || {
                    for b in 0..BATCHES {
                        mgr.append_rows(s, &rows_for(s, b * BATCH as u64, BATCH))
                            .unwrap();
                        if b % 4 == 3 {
                            mgr.flush_stream(s).unwrap();
                        }
                    }
                });
            }
            // Streaming readers chase the appenders: each observed prefix
            // must reassemble to the deterministic content.
            for &s in &streams {
                let mgr = Arc::clone(&mgr);
                scope.spawn(move || loop {
                    let n = mgr.n_tokens(s);
                    let mut sink = CollectSink::default();
                    mgr.read_rows_streaming(s, 0, n, &mut sink).unwrap();
                    let total: usize = sink.delivered.iter().map(|c| c.rows.rows()).sum();
                    assert_eq!(total as u64, n, "rows must partition the range");
                    assert_prefix_bit_identical(&sink.assembled(n as usize), s, 0);
                    if n >= BATCHES * BATCH as u64 {
                        break;
                    }
                });
            }
        });
        // Final cross-check against a no-fanout sequential read_rows.
        let seq = StorageManager::new(Arc::new(MemStore::new(4)), D);
        for &s in &streams {
            let total = BATCHES * BATCH as u64;
            seq.append_rows(s, &rows_for(s, 0, total as usize)).unwrap();
            let mut sink = CollectSink::default();
            mgr.read_rows_streaming(s, 0, total, &mut sink).unwrap();
            assert_eq!(
                sink.assembled(total as usize),
                seq.read_rows(s, 0, total).unwrap(),
                "width {width} streaming reassembly diverged from sequential read of {s:?}"
            );
        }
    }
}

/// Reactor reads vs sequential `read_rows` at iodepths 1–8 while
/// appenders actively extend the streams: every prefix observed through
/// the per-device submission queues must be bit-identical to the
/// deterministic content, and a final full read through a reactor manager
/// must equal the same data read through an engine-less manager, bit for
/// bit — the reactor is a scheduling change, never a data change.
#[test]
fn reactor_reads_bit_identical_to_sequential_at_iodepths_1_to_8_under_appenders() {
    const BATCHES: u64 = 40;
    const BATCH: usize = 10; // crosses chunk boundaries regularly
    for iodepth in 1..=8usize {
        let mgr = Arc::new(
            StorageManager::new(Arc::new(MemStore::new(4)), D)
                .with_reactor(Reactor::new(4, iodepth)),
        );
        let streams: Vec<StreamId> = (0..2)
            .map(|l| StreamId::hidden(200 + iodepth as u64, l))
            .collect();
        std::thread::scope(|scope| {
            for &s in &streams {
                let mgr = Arc::clone(&mgr);
                scope.spawn(move || {
                    for b in 0..BATCHES {
                        mgr.append_rows(s, &rows_for(s, b * BATCH as u64, BATCH))
                            .unwrap();
                        if b % 4 == 3 {
                            mgr.flush_stream(s).unwrap();
                        }
                    }
                });
            }
            // Plain and streaming readers chase the appenders through the
            // reactor queues.
            for &s in &streams {
                let plain = Arc::clone(&mgr);
                scope.spawn(move || loop {
                    let n = plain.n_tokens(s);
                    let got = plain.read_rows(s, 0, n).unwrap();
                    assert_prefix_bit_identical(&got, s, 0);
                    if n >= BATCHES * BATCH as u64 {
                        break;
                    }
                });
                let mgr = Arc::clone(&mgr);
                scope.spawn(move || loop {
                    let n = mgr.n_tokens(s);
                    let mut sink = CollectSink::default();
                    mgr.read_rows_streaming(s, 0, n, &mut sink).unwrap();
                    let total: usize = sink.delivered.iter().map(|c| c.rows.rows()).sum();
                    assert_eq!(total as u64, n, "rows must partition the range");
                    assert_prefix_bit_identical(&sink.assembled(n as usize), s, 0);
                    if n >= BATCHES * BATCH as u64 {
                        break;
                    }
                });
            }
        });
        // Cross-check against an engine-less sequential manager holding
        // the same deterministic content.
        let seq = StorageManager::new(Arc::new(MemStore::new(4)), D);
        for &s in &streams {
            let total = BATCHES * BATCH as u64;
            seq.append_rows(s, &rows_for(s, 0, total as usize)).unwrap();
            assert_eq!(
                mgr.read_rows(s, 0, total).unwrap(),
                seq.read_rows(s, 0, total).unwrap(),
                "iodepth {iodepth} diverged from the sequential read of {s:?}"
            );
        }
        let reactor = mgr.reactor().unwrap();
        assert!(
            reactor.ios_submitted() > 0,
            "iodepth {iodepth}: multi-chunk reads must route through the reactor"
        );
    }
}

/// Deterministic per-generation content: generations are told apart by
/// their distinct value at (token 0, col 0), and every other cell must
/// then belong to the *same* generation.
fn gen_cell(generation: u64, token: u64, col: usize) -> f32 {
    ((generation * 37 + token * 13 + col as u64) % 89) as f32 * 0.25 - 11.0
}

/// The delete→re-append generation race with **identical sizes**: chunk
/// keys are reused between generations and every generation has the same
/// byte length, so a stale read passes every length/OutOfRange check —
/// only the post-IO tombstone revalidation in `read_rows` prevents a read
/// from mixing rows of two generations. Runs through the chunk-fanout
/// path, where the mid-read window spans several in-flight chunk fetches.
#[test]
fn delete_reappend_same_size_generations_never_mix_in_fanout_reads() {
    const N: u64 = 128; // exactly 2 full chunks: no tail, sizes identical
    const GENERATIONS: u64 = 40;
    let mgr = Arc::new(StorageManager::new(Arc::new(MemStore::new(4)), D).with_read_fanout(4));
    let s = StreamId::hidden(77, 0);
    let gen_rows = |g: u64| Tensor2::from_fn(N as usize, D, |r, c| gen_cell(g, r as u64, c));
    mgr.append_rows(s, &gen_rows(0)).unwrap();

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // The churner: delete + immediately re-append the next generation
        // (same stream, same chunk keys, same sizes).
        {
            let mgr = Arc::clone(&mgr);
            let done = &done;
            scope.spawn(move || {
                for g in 1..GENERATIONS {
                    mgr.delete_stream(s);
                    mgr.append_rows(s, &gen_rows(g)).unwrap();
                }
                done.store(true, Ordering::Relaxed);
            });
        }
        // Readers: every successful full read must be one generation
        // wholesale.
        for _ in 0..2 {
            let mgr = Arc::clone(&mgr);
            let done = &done;
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    match mgr.read_rows(s, 0, N) {
                        Ok(got) => {
                            let probe = got.get(0, 0);
                            let generation = (0..GENERATIONS)
                                .find(|&g| probe == f16_roundtrip(gen_cell(g, 0, 0)))
                                .unwrap_or_else(|| panic!("row 0 matches no generation: {probe}"));
                            for r in 0..N as usize {
                                for c in 0..D {
                                    assert_eq!(
                                        got.get(r, c),
                                        f16_roundtrip(gen_cell(generation, r as u64, c)),
                                        "token {r} col {c} mixed into generation {generation}"
                                    );
                                }
                            }
                        }
                        // A read can land in the instant between the wipe
                        // and the restart (stream momentarily empty).
                        Err(hc_storage::StorageError::OutOfRange { .. }) => {}
                        Err(e) => panic!("only OutOfRange may escape: {e}"),
                    }
                }
            });
        }
    });

    // The final generation survived intact.
    let got = mgr.read_rows(s, 0, N).unwrap();
    for r in 0..N as usize {
        for c in 0..D {
            assert_eq!(
                got.get(r, c),
                f16_roundtrip(gen_cell(GENERATIONS - 1, r as u64, c))
            );
        }
    }
    assert_eq!(mgr.delete_stream(s), N * D as u64 * 2);
    assert_eq!(mgr.total_resident_bytes(), 0);
}

/// The delete→re-append generation race delivered **mid-stream**: the
/// streaming read hands chunks to the sink as they land, so the churn
/// window now spans *already-delivered* chunks — only the per-chunk
/// tombstone revalidation (reset + wholesale redelivery) can prevent the
/// sink from ending up with rows of two generations. Identical sizes per
/// generation keep every length/OutOfRange check blind to the swap.
#[test]
fn delete_reappend_mid_stream_resets_sink_and_never_mixes_generations() {
    const N: u64 = 128; // exactly 2 full chunks: no tail, sizes identical
    const GENERATIONS: u64 = 40;
    let mgr = Arc::new(StorageManager::new(Arc::new(MemStore::new(4)), D).with_read_fanout(4));
    let s = StreamId::hidden(78, 0);
    let gen_rows = |g: u64| Tensor2::from_fn(N as usize, D, |r, c| gen_cell(g, r as u64, c));
    mgr.append_rows(s, &gen_rows(0)).unwrap();

    let done = AtomicBool::new(false);
    let resets_seen = AtomicU64::new(0);
    std::thread::scope(|scope| {
        {
            let mgr = Arc::clone(&mgr);
            let done = &done;
            scope.spawn(move || {
                for g in 1..GENERATIONS {
                    mgr.delete_stream(s);
                    mgr.append_rows(s, &gen_rows(g)).unwrap();
                }
                done.store(true, Ordering::Relaxed);
            });
        }
        for _ in 0..2 {
            let mgr = Arc::clone(&mgr);
            let done = &done;
            let resets_seen = &resets_seen;
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let mut sink = CollectSink::default();
                    match mgr.read_rows_streaming(s, 0, N, &mut sink) {
                        Ok(()) => {
                            resets_seen.fetch_add(sink.resets as u64, Ordering::Relaxed);
                            let got = sink.assembled(N as usize);
                            let probe = got.get(0, 0);
                            let generation = (0..GENERATIONS)
                                .find(|&g| probe == f16_roundtrip(gen_cell(g, 0, 0)))
                                .unwrap_or_else(|| panic!("row 0 matches no generation: {probe}"));
                            for r in 0..N as usize {
                                for c in 0..D {
                                    assert_eq!(
                                        got.get(r, c),
                                        f16_roundtrip(gen_cell(generation, r as u64, c)),
                                        "token {r} col {c} mixed into generation {generation} \
                                         past {} resets",
                                        sink.resets
                                    );
                                }
                            }
                        }
                        // A read can land in the instant between the wipe
                        // and the restart (stream momentarily empty).
                        Err(hc_storage::StorageError::OutOfRange { .. }) => {}
                        Err(e) => panic!("only OutOfRange may escape: {e}"),
                    }
                }
            });
        }
    });

    // The final generation survived intact through a streaming read too.
    let mut sink = CollectSink::default();
    mgr.read_rows_streaming(s, 0, N, &mut sink).unwrap();
    let got = sink.assembled(N as usize);
    for r in 0..N as usize {
        for c in 0..D {
            assert_eq!(
                got.get(r, c),
                f16_roundtrip(gen_cell(GENERATIONS - 1, r as u64, c))
            );
        }
    }
    assert_eq!(mgr.delete_stream(s), N * D as u64 * 2);
    assert_eq!(mgr.total_resident_bytes(), 0);
}

/// The delete→re-append generation race through the **reactor** engine:
/// chunk fetches are in flight on several device queues when the
/// generation swaps underneath them, so only the post-IO tombstone
/// revalidation (restart onto the successor, sink reset) keeps a read
/// from mixing rows of two generations. Identical sizes per generation
/// keep every length/OutOfRange check blind to the swap.
#[test]
fn delete_reappend_under_reactor_never_mixes_generations() {
    const N: u64 = 256; // exactly 4 full chunks: one per device queue
    const GENERATIONS: u64 = 40;
    let mgr = Arc::new(
        StorageManager::new(Arc::new(MemStore::new(4)), D).with_reactor(Reactor::new(4, 2)),
    );
    let s = StreamId::hidden(79, 0);
    let gen_rows = |g: u64| Tensor2::from_fn(N as usize, D, |r, c| gen_cell(g, r as u64, c));
    mgr.append_rows(s, &gen_rows(0)).unwrap();

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        {
            let mgr = Arc::clone(&mgr);
            let done = &done;
            scope.spawn(move || {
                for g in 1..GENERATIONS {
                    mgr.delete_stream(s);
                    mgr.append_rows(s, &gen_rows(g)).unwrap();
                }
                done.store(true, Ordering::Relaxed);
            });
        }
        // One plain reader and one streaming reader race the churn.
        for streaming in [false, true] {
            let mgr = Arc::clone(&mgr);
            let done = &done;
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let read = if streaming {
                        let mut sink = CollectSink::default();
                        mgr.read_rows_streaming(s, 0, N, &mut sink)
                            .map(|()| sink.assembled(N as usize))
                    } else {
                        mgr.read_rows(s, 0, N)
                    };
                    match read {
                        Ok(got) => {
                            let probe = got.get(0, 0);
                            let generation = (0..GENERATIONS)
                                .find(|&g| probe == f16_roundtrip(gen_cell(g, 0, 0)))
                                .unwrap_or_else(|| panic!("row 0 matches no generation: {probe}"));
                            for r in 0..N as usize {
                                for c in 0..D {
                                    assert_eq!(
                                        got.get(r, c),
                                        f16_roundtrip(gen_cell(generation, r as u64, c)),
                                        "token {r} col {c} mixed into generation {generation}"
                                    );
                                }
                            }
                        }
                        // A read can land in the instant between the wipe
                        // and the restart (stream momentarily empty).
                        Err(hc_storage::StorageError::OutOfRange { .. }) => {}
                        Err(e) => panic!("only OutOfRange may escape: {e}"),
                    }
                }
            });
        }
    });

    // The final generation survived intact.
    let got = mgr.read_rows(s, 0, N).unwrap();
    for r in 0..N as usize {
        for c in 0..D {
            assert_eq!(
                got.get(r, c),
                f16_roundtrip(gen_cell(GENERATIONS - 1, r as u64, c))
            );
        }
    }
    assert_eq!(mgr.delete_stream(s), N * D as u64 * 2);
    assert_eq!(mgr.total_resident_bytes(), 0);
}

/// Delete-vs-append race: a stream deleted while an appender holds a stale
/// handle restarts cleanly, and no bytes are ever double-counted or leaked.
#[test]
fn delete_append_race_preserves_freed_equals_resident() {
    for round in 0..20 {
        let mgr = Arc::new(StorageManager::new(Arc::new(MemStore::new(2)), D));
        let s = StreamId::hidden(round, 0);
        let freed = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let mgr2 = Arc::clone(&mgr);
            scope.spawn(move || {
                for b in 0..30u64 {
                    mgr2.append_rows(s, &rows_for(s, b * 16, 16)).unwrap();
                    mgr2.flush_stream(s).unwrap();
                }
            });
            let mgr3 = Arc::clone(&mgr);
            let freed = &freed;
            scope.spawn(move || {
                for _ in 0..10 {
                    freed.fetch_add(mgr3.delete_stream(s), Ordering::Relaxed);
                    std::thread::yield_now();
                }
            });
        });
        // Whatever survived is tracked exactly; deleting it closes the books.
        let remaining = mgr.total_resident_bytes();
        assert_eq!(mgr.stream_bytes(s), remaining);
        assert_eq!(mgr.delete_stream(s), remaining);
        assert_eq!(mgr.total_resident_bytes(), 0);
        assert_eq!(mgr.delete_stream(s), 0, "backend must be empty");
        let _ = freed.load(Ordering::Relaxed);
    }
}
