//! CI bench-trajectory gate: diff freshly produced `BENCH_*.json` files
//! against the committed baselines under `bench-baselines/`.
//!
//! ```text
//! bench_compare <baseline-dir> <fresh-dir> [--threshold 0.25] [--gate-keys <file>]
//! bench_compare --update-baselines <baseline-dir> <fresh-dir>
//! ```
//!
//! `--update-baselines` replaces the compare: every `BENCH_*.json` in the
//! fresh dir is copied over its committed baseline (new benches are added,
//! baselines whose bench no longer produced a file are left untouched and
//! reported so a silent drop is still visible). This is how intentional
//! performance changes are accepted — re-run the benches, rewrite the
//! baselines, commit both in the same PR — replacing the manual
//! copy-each-file dance.
//!
//! Every numeric leaf of each JSON file is flattened to a stable path
//! (arrays of objects are labeled by their distinguishing field — e.g.
//! `backends[backend=ssd_model].rows[readers=4].sharded_vs_mutex` — so
//! reordering never shifts a metric's identity). Paths matching the gate
//! list are *gated*: a throughput-like metric (higher-better) that drops
//! more than the threshold below its baseline, or a latency-like metric
//! (`*_ms`, `*_secs`, `*latency*`: lower-better) that rises more than the
//! threshold above it, fails the run with exit code 1. Everything else is
//! reported in the delta table but never fails CI.
//!
//! The gate list (`bench-baselines/GATE_KEYS.txt` by default) holds one
//! regex-lite pattern per line (`.` literal, `.*` wildcard — this tool has
//! no regex dependency); lines starting with `!` exclude, applied after
//! the includes; `#` starts a comment. Without a gate file, every numeric
//! key is gated.
//!
//! A baseline file whose fresh counterpart is missing fails the gate (a
//! bench silently disappearing from CI is itself a regression); fresh
//! files without a baseline are reported as new and pass. A gated metric
//! whose baseline is zero (the relative delta is undefined) or whose
//! value is NaN/infinite on either side also fails explicitly — NaN
//! comparisons are vacuously false, so they would otherwise wave a broken
//! bench straight through the `>` threshold checks. The delta table is
//! written to stdout and appended to `$GITHUB_STEP_SUMMARY` when set.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (the workspace builds offline; no serde).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn parse(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.parse_obj(),
            b'[' => self.parse_arr(),
            b'"' => Ok(Json::Str(self.parse_str()?)),
            b't' => self.parse_lit("true", Json::Bool(true)),
            b'f' => self.parse_lit("false", Json::Bool(false)),
            b'n' => self.parse_lit("null", Json::Null),
            _ => self.parse_num(),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn eat_digits(&mut self) -> usize {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }

    /// Strict JSON number grammar: `-?int(.frac)?([eE][+-]?exp)?`. The
    /// previous greedy scan swallowed any run of `[0-9+-.eE]` (so `--5` or
    /// the tail of `1.2.3` reached `f64::parse` and produced a
    /// position-less "bad number"); now each malformed byte is rejected in
    /// place, with its offset in the error.
    fn parse_num(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.eat_digits() == 0 {
            return Err(self.error("expected a digit in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.eat_digits() == 0 {
                return Err(self.error("expected a digit after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.eat_digits() == 0 {
                return Err(self.error("expected a digit in exponent"));
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }

    fn parse_str(&mut self) -> Result<String, String> {
        self.eat_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Copy the full UTF-8 scalar, not just one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_arr(&mut self) -> Result<Json, String> {
        self.eat_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_obj(&mut self) -> Result<Json, String> {
        self.eat_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_str()?;
            self.skip_ws();
            self.eat_byte(b':')?;
            fields.push((key, self.parse()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.parse()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Flattening: numeric leaves under stable, reorder-proof paths.
// ---------------------------------------------------------------------------

/// Fields that identify an array element better than its index.
const LABEL_FIELDS: &[&str] = &[
    "backend", "quota", "readers", "sessions", "width", "label", "name", "bench",
];

fn element_label(v: &Json) -> Option<String> {
    if let Json::Obj(fields) = v {
        for want in LABEL_FIELDS {
            for (k, val) in fields {
                if k == want {
                    return match val {
                        Json::Str(s) => Some(format!("{k}={s}")),
                        Json::Num(n) => Some(format!("{k}={n}")),
                        _ => None,
                    };
                }
            }
        }
    }
    None
}

fn flatten(v: &Json, prefix: &str, out: &mut BTreeMap<String, f64>) {
    match v {
        Json::Num(n) => {
            out.insert(prefix.to_string(), *n);
        }
        Json::Obj(fields) => {
            for (k, val) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(val, &path, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = element_label(item).unwrap_or_else(|| i.to_string());
                flatten(item, &format!("{prefix}[{label}]"), out);
            }
        }
        // Strings, booleans and nulls are descriptive, not trajectory.
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Gate patterns: regex-lite (`.` literal, `*` wildcard via `.*`).
// ---------------------------------------------------------------------------

/// Matches `pat` anywhere in `text`, where `.*` in `pat` is a wildcard and
/// every other character (including `.`) is literal. `\[`/`\]`/`\.` are
/// accepted for regex habit but mean the literal character anyway.
fn pattern_matches(pat: &str, text: &str) -> bool {
    let mut pieces: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                if let Some(&n) = chars.peek() {
                    cur.push(n);
                    chars.next();
                }
            }
            '.' => {
                if chars.peek() == Some(&'*') {
                    chars.next();
                    pieces.push(std::mem::take(&mut cur));
                } else {
                    cur.push('.');
                }
            }
            _ => cur.push(c),
        }
    }
    pieces.push(cur);
    // Substring match with ordered wildcard pieces.
    let mut hay = text;
    for (i, piece) in pieces.iter().enumerate() {
        if piece.is_empty() {
            continue;
        }
        match hay.find(piece.as_str()) {
            Some(at) => {
                // Every piece may float (overall substring semantics), so
                // no anchoring even for the first piece.
                hay = &hay[at + piece.len()..];
            }
            None => {
                let _ = i;
                return false;
            }
        }
    }
    true
}

struct GateList {
    include: Vec<String>,
    exclude: Vec<String>,
}

impl GateList {
    fn parse(text: &str) -> Self {
        let mut include = Vec::new();
        let mut exclude = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('!') {
                exclude.push(rest.trim().to_string());
            } else {
                include.push(line.to_string());
            }
        }
        Self { include, exclude }
    }

    /// Everything gated (used when no gate file exists).
    fn all() -> Self {
        Self {
            include: vec![String::new()],
            exclude: Vec::new(),
        }
    }

    fn is_gated(&self, path: &str) -> bool {
        let included = self
            .include
            .iter()
            .any(|p| p.is_empty() || pattern_matches(p, path));
        included && !self.exclude.iter().any(|p| pattern_matches(p, path))
    }
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// Latency-like metrics regress upward; everything else downward. Any
/// path segment may carry the marker (`timings_ms.pipelined`,
/// `restore_ms`, `chunk_read_latency_us`).
fn lower_is_better(path: &str) -> bool {
    path.contains("_ms") || path.contains("_secs") || path.contains("latency")
}

#[derive(Debug, PartialEq)]
enum Status {
    Ok,
    Improved,
    Regressed,
    Ungated,
    New,
    Missing,
    /// A gated metric whose baseline is zero: the relative gate
    /// `(new − base) / base` is undefined (inf/NaN comparisons silently
    /// pass `>` checks), so this fails CI explicitly — re-baseline the
    /// metric or exclude it from the gate list.
    ZeroBaseline,
    /// A gated metric that is NaN/infinite on either side: every
    /// threshold comparison on it is vacuously false, which would wave a
    /// broken bench through the gate.
    NonFinite,
}

struct Row {
    path: String,
    baseline: Option<f64>,
    fresh: Option<f64>,
    status: Status,
}

fn compare_maps(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    gates: &GateList,
    threshold: f64,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for (path, &old) in baseline {
        match fresh.get(path) {
            Some(&new) => {
                let gated = gates.is_gated(path);
                let status = if !gated {
                    Status::Ungated
                } else if !old.is_finite() || !new.is_finite() {
                    Status::NonFinite
                } else if old == 0.0 {
                    // The relative gate is undefined on a zero baseline;
                    // an unchanged zero is fine, anything else must be an
                    // explicit failure rather than a NaN that slips by.
                    if new == 0.0 {
                        Status::Ok
                    } else {
                        Status::ZeroBaseline
                    }
                } else {
                    let worse = if lower_is_better(path) {
                        new > old * (1.0 + threshold)
                    } else {
                        new < old * (1.0 - threshold)
                    };
                    let better = if lower_is_better(path) {
                        new < old * (1.0 - threshold)
                    } else {
                        new > old * (1.0 + threshold)
                    };
                    if worse {
                        Status::Regressed
                    } else if better {
                        Status::Improved
                    } else {
                        Status::Ok
                    }
                };
                rows.push(Row {
                    path: path.clone(),
                    baseline: Some(old),
                    fresh: Some(new),
                    status,
                });
            }
            None => {
                rows.push(Row {
                    path: path.clone(),
                    baseline: Some(old),
                    fresh: None,
                    status: if gates.is_gated(path) {
                        Status::Missing
                    } else {
                        Status::Ungated
                    },
                });
            }
        }
    }
    for (path, &new) in fresh {
        if !baseline.contains_key(path) {
            rows.push(Row {
                path: path.clone(),
                baseline: None,
                fresh: Some(new),
                status: Status::New,
            });
        }
    }
    rows
}

fn fmt_num(v: Option<f64>) -> String {
    match v {
        None => "—".into(),
        Some(v) if v.abs() >= 1000.0 => format!("{v:.0}"),
        Some(v) => format!("{v:.3}"),
    }
}

fn fmt_delta(row: &Row) -> String {
    match (row.baseline, row.fresh) {
        (Some(old), Some(new)) if old != 0.0 => {
            format!("{:+.1}%", (new - old) / old * 100.0)
        }
        _ => "—".into(),
    }
}

fn render_table(file: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n### {file}\n");
    let _ = writeln!(out, "| metric | baseline | current | Δ | status |");
    let _ = writeln!(out, "|---|---:|---:|---:|---|");
    for r in rows {
        let status = match r.status {
            Status::Ok => "ok",
            Status::Improved => "**improved**",
            Status::Regressed => "**REGRESSED**",
            Status::Ungated => "reported",
            Status::New => "new",
            Status::Missing => "**MISSING**",
            Status::ZeroBaseline => "**ZERO-BASELINE** (re-baseline or ungate)",
            Status::NonFinite => "**NON-FINITE**",
        };
        let _ = writeln!(
            out,
            "| `{}` | {} | {} | {} | {} |",
            r.path,
            fmt_num(r.baseline),
            fmt_num(r.fresh),
            fmt_delta(r),
            status
        );
    }
    out
}

fn load_flat(path: &Path) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = BTreeMap::new();
    flatten(
        &parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?,
        "",
        &mut out,
    );
    Ok(out)
}

fn run(
    baseline_dir: &Path,
    fresh_dir: &Path,
    threshold: f64,
    gate_file: Option<&Path>,
) -> Result<(String, bool), String> {
    let gates = match gate_file {
        Some(p) if p.exists() => GateList::parse(
            &std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?,
        ),
        _ => GateList::all(),
    };

    let baseline_files = bench_files(baseline_dir)?;
    if baseline_files.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines in {}",
            baseline_dir.display()
        ));
    }

    let mut report = String::from("## Bench trajectory vs committed baselines\n");
    let _ = writeln!(
        report,
        "\nGate: >{:.0}% regression on gated metrics fails CI.",
        threshold * 100.0
    );
    let mut failed = false;
    for base_path in &baseline_files {
        let name = bench_file_name(base_path)?;
        let fresh_path = fresh_dir.join(&name);
        if !fresh_path.exists() {
            failed = true;
            let _ = writeln!(
                report,
                "\n### {name}\n\n**MISSING**: baseline exists but this run produced no {name} — a bench dropped out of CI."
            );
            continue;
        }
        let rows = compare_maps(
            &load_flat(base_path)?,
            &load_flat(&fresh_path)?,
            &gates,
            threshold,
        );
        if rows.iter().any(|r| {
            matches!(
                r.status,
                Status::Regressed | Status::Missing | Status::ZeroBaseline | Status::NonFinite
            )
        }) {
            failed = true;
        }
        report.push_str(&render_table(&name, &rows));
    }
    // Fresh benches without baselines: visibility only.
    if let Ok(entries) = std::fs::read_dir(fresh_dir) {
        let mut extra: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str().map(str::to_string))
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .filter(|n| !baseline_dir.join(n).exists())
            .collect();
        extra.sort();
        for name in extra {
            let _ = writeln!(
                report,
                "\n### {name}\n\nNo committed baseline yet — consider adding one under `bench-baselines/`."
            );
        }
    }
    let _ = writeln!(
        report,
        "\n**Result: {}**",
        if failed { "FAILED" } else { "PASSED" }
    );
    Ok((report, failed))
}

/// Lists the `BENCH_*.json` files of `dir`, sorted.
/// The file name of a bench result as UTF-8, or a typed error — results
/// land in reports and path joins, so a non-decodable name must not abort.
fn bench_file_name(path: &Path) -> Result<String, String> {
    path.file_name()
        .and_then(|n| n.to_str())
        .map(str::to_string)
        .ok_or_else(|| format!("bench file has a non-UTF-8 name: {}", path.display()))
}

fn bench_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// `--update-baselines`: rewrite `baseline_dir`'s `BENCH_*.json` set from a
/// fresh run in `fresh_dir`. Returns the human-readable report. Fresh
/// files must parse as JSON before anything is copied — a truncated bench
/// artifact must not clobber a good baseline.
fn update_baselines(baseline_dir: &Path, fresh_dir: &Path) -> Result<String, String> {
    let fresh = bench_files(fresh_dir)?;
    if fresh.is_empty() {
        return Err(format!(
            "no BENCH_*.json files in {} to update from",
            fresh_dir.display()
        ));
    }
    for path in &fresh {
        load_flat(path)?; // validate before touching any baseline
    }
    let mut report = String::from("## Baselines updated from fresh run\n\n");
    for path in &fresh {
        let name = bench_file_name(path)?;
        let dest = baseline_dir.join(&name);
        let existed = dest.exists();
        std::fs::copy(path, &dest)
            .map_err(|e| format!("cannot copy {} to {}: {e}", path.display(), dest.display()))?;
        let _ = writeln!(
            report,
            "- `{name}`: {}",
            if existed {
                "updated"
            } else {
                "added (new bench)"
            }
        );
    }
    // Baselines whose bench produced nothing this run: kept, but called
    // out — a bench silently dropping out should not hide behind an
    // update either.
    for stale in bench_files(baseline_dir)? {
        let name = bench_file_name(&stale)?;
        if !fresh_dir.join(&name).exists() {
            let _ = writeln!(
                report,
                "- `{name}`: **kept unchanged** (no fresh {name} in this run)"
            );
        }
    }
    Ok(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut threshold = 0.25;
    let mut gate_file: Option<PathBuf> = None;
    let mut update = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--update-baselines" => update = true,
            "--threshold" => {
                i += 1;
                threshold = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(t) => t,
                    None => {
                        eprintln!("bench-compare: --threshold takes a fraction, e.g. 0.25");
                        return ExitCode::from(2);
                    }
                };
            }
            "--gate-keys" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("bench-compare: --gate-keys takes a path");
                    return ExitCode::from(2);
                };
                gate_file = Some(PathBuf::from(p));
            }
            other => positional.push(PathBuf::from(other)),
        }
        i += 1;
    }
    if positional.len() != 2 {
        eprintln!(
            "usage: bench_compare <baseline-dir> <fresh-dir> [--threshold 0.25] [--gate-keys <file>]\n       bench_compare --update-baselines <baseline-dir> <fresh-dir>"
        );
        return ExitCode::from(2);
    }
    if update {
        return match update_baselines(&positional[0], &positional[1]) {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_compare: {e}");
                ExitCode::from(2)
            }
        };
    }
    let default_gates = positional[0].join("GATE_KEYS.txt");
    let gate_file = gate_file.unwrap_or(default_gates);

    match run(&positional[0], &positional[1], threshold, Some(&gate_file)) {
        Ok((report, failed)) => {
            println!("{report}");
            if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
                use std::io::Write;
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .append(true)
                    .create(true)
                    .open(summary)
                {
                    let _ = f.write_all(report.as_bytes());
                }
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("bench_compare: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_flattens_nested_json() {
        let v = parse_json(
            r#"{ "a": 1.5, "b": { "c_ms": 2 }, "arr": [ { "readers": 4, "x": 7 } ], "s": "str", "t": true }"#,
        )
        .unwrap();
        let mut flat = BTreeMap::new();
        flatten(&v, "", &mut flat);
        assert_eq!(flat.get("a"), Some(&1.5));
        assert_eq!(flat.get("b.c_ms"), Some(&2.0));
        assert_eq!(flat.get("arr[readers=4].x"), Some(&7.0));
        assert_eq!(flat.len(), 4, "readers label is itself a leaf");
    }

    #[test]
    fn width_labeled_arrays_get_reorder_proof_paths() {
        let v = parse_json(r#"{ "fanout": [ { "width": 4, "tokens_per_sec": 9 } ] }"#).unwrap();
        let mut flat = BTreeMap::new();
        flatten(&v, "", &mut flat);
        assert_eq!(flat.get("fanout[width=4].tokens_per_sec"), Some(&9.0));
    }

    #[test]
    fn malformed_numbers_are_rejected_with_position() {
        for bad in [
            "{ \"x\": 1.2.3 }",
            "{ \"x\": --5 }",
            "{ \"x\": +5 }",
            "{ \"x\": 1. }",
            "{ \"x\": .5 }",
            "{ \"x\": 1e }",
        ] {
            let err = parse_json(bad).unwrap_err();
            assert!(
                err.contains("at byte"),
                "{bad:?} must fail with a positioned error, got: {err}"
            );
        }
        // The strict grammar still accepts everything the benches emit.
        for good in ["-0.5", "1200", "3.25", "1e3", "2.5E-2", "-7e+1"] {
            let v = parse_json(&format!("{{ \"x\": {good} }}")).unwrap();
            let mut flat = BTreeMap::new();
            flatten(&v, "", &mut flat);
            assert_eq!(flat.get("x"), Some(&good.parse::<f64>().unwrap()));
        }
    }

    #[test]
    fn array_elements_without_label_use_index() {
        let v = parse_json(r#"{ "xs": [ 1, 2 ] }"#).unwrap();
        let mut flat = BTreeMap::new();
        flatten(&v, "", &mut flat);
        assert_eq!(flat.get("xs[0]"), Some(&1.0));
        assert_eq!(flat.get("xs[1]"), Some(&2.0));
    }

    #[test]
    fn patterns_match_substrings_and_wildcards() {
        assert!(pattern_matches(
            "tokens_per_sec",
            "rows[readers=4].tokens_per_sec"
        ));
        assert!(pattern_matches(
            "backends\\[backend=file\\]",
            "backends[backend=file].rows[readers=1].x"
        ));
        assert!(pattern_matches(
            "rows.*speedup",
            "rows[readers=2].concurrent_speedup"
        ));
        assert!(!pattern_matches(
            "speedup",
            "rows[readers=2].tokens_per_sec"
        ));
    }

    #[test]
    fn gate_list_includes_and_excludes() {
        let g =
            GateList::parse("# comment\nspeedup\ntokens_per_sec\n!backends\\[backend=file\\]\n");
        assert!(g.is_gated("concurrency_sweep[sessions=4].concurrent_speedup"));
        assert!(!g.is_gated("backends[backend=file].rows[readers=1].tokens_per_sec"));
        assert!(g.is_gated("backends[backend=ssd_model].rows[readers=1].tokens_per_sec"));
        assert!(!g.is_gated("timings_ms.seed_sequential"));
    }

    #[test]
    fn throughput_regression_beyond_threshold_fails() {
        let old = BTreeMap::from([("x.tokens_per_sec".to_string(), 100.0)]);
        let new = BTreeMap::from([("x.tokens_per_sec".to_string(), 70.0)]);
        let rows = compare_maps(&old, &new, &GateList::all(), 0.25);
        assert_eq!(rows[0].status, Status::Regressed);
        let new_ok = BTreeMap::from([("x.tokens_per_sec".to_string(), 80.0)]);
        let rows = compare_maps(&old, &new_ok, &GateList::all(), 0.25);
        assert_eq!(rows[0].status, Status::Ok);
    }

    #[test]
    fn latency_metrics_regress_upward() {
        let old = BTreeMap::from([("timings_ms.pipelined".to_string(), 10.0)]);
        let worse = BTreeMap::from([("timings_ms.pipelined".to_string(), 14.0)]);
        let rows = compare_maps(&old, &worse, &GateList::all(), 0.25);
        assert_eq!(rows[0].status, Status::Regressed);
        let better = BTreeMap::from([("timings_ms.pipelined".to_string(), 6.0)]);
        let rows = compare_maps(&old, &better, &GateList::all(), 0.25);
        assert_eq!(rows[0].status, Status::Improved);
    }

    #[test]
    fn missing_gated_metric_fails_new_metric_passes() {
        let old = BTreeMap::from([("a.speedup".to_string(), 2.0)]);
        let new = BTreeMap::from([("b.speedup".to_string(), 3.0)]);
        let rows = compare_maps(&old, &new, &GateList::all(), 0.25);
        assert!(rows.iter().any(|r| r.status == Status::Missing));
        assert!(rows.iter().any(|r| r.status == Status::New));
    }

    #[test]
    fn zero_baseline_gated_metric_fails_explicitly() {
        // (new − base) / base with base == 0 is inf/NaN; NaN comparisons
        // silently pass the threshold checks, so this must be explicit.
        let old = BTreeMap::from([("x.tokens_per_sec".to_string(), 0.0)]);
        let new = BTreeMap::from([("x.tokens_per_sec".to_string(), 50.0)]);
        let rows = compare_maps(&old, &new, &GateList::all(), 0.25);
        assert_eq!(rows[0].status, Status::ZeroBaseline);
        // An unchanged zero is not a failure.
        let same = BTreeMap::from([("x.tokens_per_sec".to_string(), 0.0)]);
        let rows = compare_maps(&old, &same, &GateList::all(), 0.25);
        assert_eq!(rows[0].status, Status::Ok);
        // Ungated zero baselines stay reported-only.
        let gates = GateList::parse("something_else\n");
        let rows = compare_maps(&old, &new, &gates, 0.25);
        assert_eq!(rows[0].status, Status::Ungated);
    }

    #[test]
    fn non_finite_gated_metrics_fail_instead_of_passing() {
        let old = BTreeMap::from([("x.speedup".to_string(), 4.0)]);
        let new = BTreeMap::from([("x.speedup".to_string(), f64::NAN)]);
        let rows = compare_maps(&old, &new, &GateList::all(), 0.25);
        assert_eq!(rows[0].status, Status::NonFinite);
        let new = BTreeMap::from([("x.speedup".to_string(), f64::INFINITY)]);
        let rows = compare_maps(&old, &new, &GateList::all(), 0.25);
        assert_eq!(rows[0].status, Status::NonFinite);
        let old_nan = BTreeMap::from([("x.speedup".to_string(), f64::NAN)]);
        let ok = BTreeMap::from([("x.speedup".to_string(), 4.0)]);
        let rows = compare_maps(&old_nan, &ok, &GateList::all(), 0.25);
        assert_eq!(rows[0].status, Status::NonFinite);
    }

    #[test]
    fn zero_baseline_fails_a_full_run() {
        let root =
            std::env::temp_dir().join(format!("bench-compare-zerobase-{}", std::process::id()));
        let base = root.join("base");
        let fresh = root.join("fresh");
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&fresh).unwrap();
        std::fs::write(base.join("BENCH_z.json"), r#"{ "speedup": 0 }"#).unwrap();
        std::fs::write(fresh.join("BENCH_z.json"), r#"{ "speedup": 2.0 }"#).unwrap();
        let (report, failed) = run(&base, &fresh, 0.25, None).unwrap();
        assert!(failed, "zero baseline must fail CI:\n{report}");
        assert!(report.contains("ZERO-BASELINE"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn update_baselines_rewrites_adds_and_keeps() {
        let root =
            std::env::temp_dir().join(format!("bench-compare-update-{}", std::process::id()));
        let base = root.join("base");
        let fresh = root.join("fresh");
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&fresh).unwrap();
        std::fs::write(base.join("BENCH_a.json"), r#"{ "speedup": 1.0 }"#).unwrap();
        std::fs::write(base.join("BENCH_gone.json"), r#"{ "speedup": 9.0 }"#).unwrap();
        std::fs::write(fresh.join("BENCH_a.json"), r#"{ "speedup": 2.0 }"#).unwrap();
        std::fs::write(fresh.join("BENCH_new.json"), r#"{ "speedup": 3.0 }"#).unwrap();
        let report = update_baselines(&base, &fresh).unwrap();
        assert!(report.contains("`BENCH_a.json`: updated"), "{report}");
        assert!(report.contains("`BENCH_new.json`: added"), "{report}");
        assert!(
            report.contains("`BENCH_gone.json`: **kept unchanged**"),
            "{report}"
        );
        // The baseline dir now matches the fresh run (plus the stale one).
        assert_eq!(
            std::fs::read_to_string(base.join("BENCH_a.json")).unwrap(),
            r#"{ "speedup": 2.0 }"#
        );
        assert!(base.join("BENCH_new.json").exists());
        assert_eq!(
            std::fs::read_to_string(base.join("BENCH_gone.json")).unwrap(),
            r#"{ "speedup": 9.0 }"#
        );
        // A followup compare against the rewritten baselines passes clean.
        std::fs::write(base.join("GATE_KEYS.txt"), "speedup\n").unwrap();
        let (_, failed) = run(&base, &fresh, 0.25, Some(&base.join("GATE_KEYS.txt")))
            .map(|(r, f)| (r.clone(), f || r.contains("REGRESSED")))
            .unwrap();
        // BENCH_gone has no fresh counterpart, which the *gate* flags —
        // update mode deliberately leaves that decision visible.
        assert!(failed, "stale baseline must still fail the gate");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn update_baselines_rejects_malformed_fresh_files_before_copying() {
        let root =
            std::env::temp_dir().join(format!("bench-compare-update-bad-{}", std::process::id()));
        let base = root.join("base");
        let fresh = root.join("fresh");
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&fresh).unwrap();
        std::fs::write(base.join("BENCH_a.json"), r#"{ "speedup": 1.0 }"#).unwrap();
        std::fs::write(fresh.join("BENCH_a.json"), "{ truncated").unwrap();
        assert!(update_baselines(&base, &fresh).is_err());
        // The good baseline survived the rejected update.
        assert_eq!(
            std::fs::read_to_string(base.join("BENCH_a.json")).unwrap(),
            r#"{ "speedup": 1.0 }"#
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn ungated_metrics_never_fail() {
        let gates = GateList::parse("speedup\n");
        let old = BTreeMap::from([("noise.tokens_per_sec".to_string(), 100.0)]);
        let new = BTreeMap::from([("noise.tokens_per_sec".to_string(), 1.0)]);
        let rows = compare_maps(&old, &new, &gates, 0.25);
        assert_eq!(rows[0].status, Status::Ungated);
    }

    #[test]
    fn full_run_over_temp_dirs() {
        let root = std::env::temp_dir().join(format!("bench-compare-test-{}", std::process::id()));
        let base = root.join("base");
        let fresh = root.join("fresh");
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&fresh).unwrap();
        std::fs::write(
            base.join("BENCH_x.json"),
            r#"{ "speedup": 4.0, "noise_tokens_per_sec": 100 }"#,
        )
        .unwrap();
        std::fs::write(
            fresh.join("BENCH_x.json"),
            r#"{ "speedup": 3.9, "noise_tokens_per_sec": 1 }"#,
        )
        .unwrap();
        std::fs::write(base.join("GATE_KEYS.txt"), "speedup\n").unwrap();
        let (report, failed) = run(&base, &fresh, 0.25, Some(&base.join("GATE_KEYS.txt"))).unwrap();
        assert!(!failed, "3.9 vs 4.0 is inside the 25%% gate:\n{report}");
        // Now a real regression.
        std::fs::write(fresh.join("BENCH_x.json"), r#"{ "speedup": 1.0 }"#).unwrap();
        let (report, failed) = run(&base, &fresh, 0.25, Some(&base.join("GATE_KEYS.txt"))).unwrap();
        assert!(failed, "{report}");
        assert!(report.contains("REGRESSED"));
        // And a missing bench file.
        std::fs::remove_file(fresh.join("BENCH_x.json")).unwrap();
        let (report, failed) = run(&base, &fresh, 0.25, Some(&base.join("GATE_KEYS.txt"))).unwrap();
        assert!(failed);
        assert!(report.contains("MISSING"));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
