//! `hc-analyze`: a repo-native concurrency lint pass.
//!
//! A hand-written Rust lexer + scope tracker (tokens, brace nesting,
//! `let`-guard bindings — deliberately *not* a full parser, in the same
//! no-registry spirit as `tools/bench-compare`) that walks `crates/**/*.rs`
//! and enforces the concurrency invariants the module docs otherwise only
//! describe in prose. Four rule families:
//!
//! * **lock-order** — a module declares its lock acquisition order with a
//!   header comment (`// hc-analyze: lock-order map=streams < stream=cell`);
//!   nested guard acquisitions that violate the declared order, or that
//!   involve a lock class the module never declared, are findings.
//! * **blocking-under-lock** — `sleep`, `recv`/`recv_timeout`, `join`,
//!   `send` (bounded channels deadlock against backpressure), `flush`,
//!   `sync_all`/`sync_data`, and `ChunkStore` IO (`read_chunk`/`write_chunk`)
//!   while a `let`-bound `MutexGuard`/`RwLock` guard is live in scope — the
//!   PR-7 `LatencyStore` sleep-under-lock bug class. Chained blocking calls
//!   on a temporary guard (`rx.lock().recv()`) are caught too.
//! * **atomic-ordering** — `Ordering::Relaxed` on an atomic whose name is
//!   both mutated and loaded in the same crate (a cross-thread-visible
//!   counter, not a private scratch value) must carry an
//!   `allow(relaxed) <reason>` justification.
//! * **panic-policy** — `unwrap()`/`expect()`/`panic!` in non-test code of
//!   the IO and restore hot-path trees (`crates/storage`, `crates/restore`,
//!   `crates/cachectl`, and the `tools/` gate binaries) require an
//!   `allow(panic) <reason>` annotation.
//!
//! Annotation grammar (one per line comment, same line as the finding or
//! the line directly above it):
//!
//! ```text
//! // hc-analyze: lock-order map=streams < stream=cell < job=core
//! // hc-analyze: allow(relaxed) monotonic metrics counter, no handoff
//! // hc-analyze: allow(panic) invariant: planned ranges are validated
//! // hc-analyze: allow(blocking_under_lock) journal write-ordering contract
//! // hc-analyze: allow(lock_order) probe lock, never held across the other
//! ```
//!
//! An `allow` annotation without a reason is itself a finding
//! (`bad-annotation`), so the justification cannot rot into a bare waiver.
//! `#[cfg(test)]` items, `tests/`, `benches/`, `examples/` and fixture
//! trees are exempt: the rules police production paths, not assertions.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule families (plus the annotation-hygiene meta rule).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Rule {
    /// Nested guard acquisition violating (or missing from) the module's
    /// declared lock order.
    LockOrder,
    /// Blocking call while a lock guard is live in scope.
    BlockingUnderLock,
    /// Unjustified `Ordering::Relaxed` on a shared counter.
    AtomicOrdering,
    /// `unwrap()`/`expect()`/`panic!` on a policed hot path.
    PanicPolicy,
    /// Malformed `hc-analyze:` annotation (unknown verb, missing reason,
    /// unparseable lock-order declaration).
    BadAnnotation,
}

impl Rule {
    /// Stable rule name used in findings and documentation.
    pub fn name(self) -> &'static str {
        match self {
            Rule::LockOrder => "lock-order",
            Rule::BlockingUnderLock => "blocking-under-lock",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::PanicPolicy => "panic-policy",
            Rule::BadAnnotation => "bad-annotation",
        }
    }
}

/// One finding: a rule violation at a source line.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Path as given to the analyzer.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule family.
    pub rule: Rule,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.msg
        )
    }
}

/// A source file queued for analysis, with its policy classification.
pub struct SourceFile {
    /// Display path (used in findings).
    pub path: String,
    /// File contents.
    pub src: String,
    /// Whether the panic-policy rule applies (storage/restore/cachectl
    /// src trees and the `tools/` gate binaries).
    pub panic_policy: bool,
    /// Crate grouping key for the atomic-ordering shared-name analysis
    /// (e.g. `crates/storage`).
    pub crate_key: String,
}

impl SourceFile {
    /// Classifies `path` (workspace-relative or absolute) into policy
    /// flags and reads nothing — pair with the file's contents.
    pub fn classify(path: &Path, src: String) -> SourceFile {
        let p = path.to_string_lossy().replace('\\', "/");
        let panic_policy = [
            "crates/storage/src",
            "crates/restore/src",
            "crates/cachectl/src",
        ]
        .iter()
        .any(|t| p.contains(t))
            || (p.contains("tools/") && p.contains("/src/"));
        SourceFile {
            path: p.clone(),
            src,
            panic_policy,
            crate_key: crate_key_of(&p),
        }
    }
}

/// Crate grouping key: the path prefix up to and excluding `/src`
/// (`crates/storage/src/manager.rs` → `crates/storage`). Files outside a
/// `src` tree group by their parent directory.
fn crate_key_of(path: &str) -> String {
    if let Some(i) = path.find("/src/") {
        path[..i].to_string()
    } else {
        Path::new(path)
            .parent()
            .map(|p| p.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.to_string())
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TokKind {
    Ident,
    Punct,
    Literal,
    Lifetime,
}

#[derive(Clone, Debug)]
struct Tok {
    kind: TokKind,
    text: String,
    line: u32,
}

impl Tok {
    fn is(&self, text: &str) -> bool {
        self.text == text
    }
    fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// Lexes `src` into significant tokens, collecting `hc-analyze:` line
/// comments as annotations along the way. Strings, chars, lifetimes and
/// comments never produce spurious tokens, so brace/paren tracking over
/// the output is exact.
fn lex(src: &str, path: &str, anns: &mut Annotations, findings: &mut Vec<Finding>) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        // Raw (byte) strings start with an `r`/`b` prefix that would
        // otherwise lex as an identifier — peel them off first.
        if c == 'r' || c == 'b' {
            if let Some(j) = raw_string_start(&b, i) {
                i = lex_raw_string(&b, j, &mut line);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("r\"\""),
                    line,
                });
                continue;
            }
        }
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let comment: String = b[start..i].iter().collect();
                anns.note_comment(&comment, line, path, findings);
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                // Block comments nest in Rust.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i = lex_string(&b, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("\"\""),
                    line,
                });
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is `'ident` NOT
                // followed by a closing quote; everything else is a char.
                let mut j = i + 1;
                if j < b.len() && (b[j].is_alphabetic() || b[j] == '_') {
                    let mut k = j;
                    while k < b.len() && (b[k].is_alphanumeric() || b[k] == '_') {
                        k += 1;
                    }
                    if b.get(k) != Some(&'\'') {
                        // Lifetime.
                        toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: b[i..k].iter().collect(),
                            line,
                        });
                        i = k;
                        continue;
                    }
                }
                // Char literal: consume to the closing quote, honoring
                // escapes.
                j = i + 1;
                while j < b.len() {
                    if b[j] == '\\' {
                        j += 2;
                        continue;
                    }
                    if b[j] == '\'' {
                        break;
                    }
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("''"),
                    line,
                });
                i = (j + 1).min(b.len());
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                // Numbers (including float/exponent/suffix forms) — the
                // analyzer never inspects their value.
                while i < b.len()
                    && (b[i].is_alphanumeric()
                        || b[i] == '_'
                        || (b[i] == '.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
                {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("0"),
                    line,
                });
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Consumes a `"..."` string starting at `i` (the opening quote); returns
/// the index just past the closing quote, tracking newlines.
fn lex_string(b: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// If `i` starts a raw (byte) string (`r"`, `r#"`, `br#"`, ...), returns
/// the index of the `r`'s hash run start (i.e. past the prefix letters).
fn raw_string_start(b: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut k = j;
    while b.get(k) == Some(&'#') {
        k += 1;
    }
    if b.get(k) == Some(&'"') {
        Some(j)
    } else {
        None
    }
}

/// Consumes a raw string whose hash run starts at `j`; returns the index
/// past the closing delimiter.
fn lex_raw_string(b: &[char], j: usize, line: &mut u32) -> usize {
    let mut hashes = 0;
    let mut k = j;
    while b.get(k) == Some(&'#') {
        hashes += 1;
        k += 1;
    }
    // b[k] == '"'
    k += 1;
    while k < b.len() {
        if b[k] == '\n' {
            *line += 1;
            k += 1;
            continue;
        }
        if b[k] == '"' {
            let mut h = 0;
            while b.get(k + 1 + h) == Some(&'#') && h < hashes {
                h += 1;
            }
            if h == hashes {
                return k + 1 + hashes;
            }
        }
        k += 1;
    }
    k
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AllowKind {
    Relaxed,
    Panic,
    Blocking,
    LockOrder,
}

impl AllowKind {
    fn parse(s: &str) -> Option<AllowKind> {
        match s.replace('-', "_").as_str() {
            "relaxed" => Some(AllowKind::Relaxed),
            "panic" => Some(AllowKind::Panic),
            "blocking_under_lock" => Some(AllowKind::Blocking),
            "lock_order" => Some(AllowKind::LockOrder),
            _ => None,
        }
    }
}

/// Per-file annotation table: `allow(...)` waivers by line, plus the
/// module's lock-order declaration.
#[derive(Default)]
struct Annotations {
    /// line → allow kinds with a non-empty reason on that line.
    allows: HashMap<u32, Vec<AllowKind>>,
    /// Lock class name → rank, from the `lock-order` declaration.
    ranks: HashMap<String, u32>,
    /// Line of the declaration (for duplicate detection).
    decl_line: Option<u32>,
}

impl Annotations {
    /// Parses one line comment; `hc-analyze:` directives land in the
    /// table, malformed ones land in `findings`.
    fn note_comment(&mut self, comment: &str, line: u32, path: &str, findings: &mut Vec<Finding>) {
        let body = comment.trim_start_matches(['/', '!']).trim();
        let Some(rest) = body.strip_prefix("hc-analyze:") else {
            return;
        };
        let rest = rest.trim();
        let bad = |msg: String| Finding {
            file: path.to_string(),
            line,
            rule: Rule::BadAnnotation,
            msg,
        };
        if let Some(decl) = rest.strip_prefix("lock-order") {
            if self.decl_line.is_some() {
                findings.push(bad("duplicate lock-order declaration".into()));
                return;
            }
            match parse_lock_order(decl) {
                Ok(ranks) => {
                    self.ranks = ranks;
                    self.decl_line = Some(line);
                }
                Err(e) => findings.push(bad(format!("unparseable lock-order declaration: {e}"))),
            }
        } else if let Some(a) = rest.strip_prefix("allow(") {
            let Some(close) = a.find(')') else {
                findings.push(bad("allow(...) missing closing parenthesis".into()));
                return;
            };
            let Some(kind) = AllowKind::parse(a[..close].trim()) else {
                findings.push(bad(format!(
                    "unknown allow kind `{}` (expected relaxed, panic, \
                     blocking_under_lock or lock_order)",
                    a[..close].trim()
                )));
                return;
            };
            let reason = a[close + 1..].trim();
            if reason.is_empty() {
                findings.push(bad(
                    "allow annotation without a reason — justify the waiver".into(),
                ));
                return;
            }
            self.allows.entry(line).or_default().push(kind);
        } else {
            findings.push(bad(format!(
                "unknown hc-analyze directive `{}` (expected lock-order or allow(...))",
                rest.split_whitespace().next().unwrap_or("")
            )));
        }
    }

    /// True when a finding of `kind` at `line` is waived by an annotation
    /// on the same line or the line directly above.
    fn allowed(&self, kind: AllowKind, line: u32) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.allows.get(l).is_some_and(|ks| ks.contains(&kind)))
    }
}

/// Parses `a=b < c < d=e` into name → rank. Aliases (`=`) share a rank.
fn parse_lock_order(decl: &str) -> Result<HashMap<String, u32>, String> {
    let mut ranks = HashMap::new();
    let decl = decl.trim();
    if decl.is_empty() {
        return Err("empty declaration".into());
    }
    for (rank, group) in decl.split('<').enumerate() {
        for name in group.split('=') {
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(format!("bad lock class name `{name}`"));
            }
            if ranks.insert(name.to_string(), rank as u32).is_some() {
                return Err(format!("lock class `{name}` declared twice"));
            }
        }
    }
    Ok(ranks)
}

// ---------------------------------------------------------------------------
// Test-code stripping
// ---------------------------------------------------------------------------

/// Removes items behind `#[cfg(test)]` / `#[test]`-style attributes from
/// the token stream: the rules police production code, not assertions.
fn strip_test_items(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is("#") && toks.get(i + 1).is_some_and(|t| t.is("[")) {
            // Collect this attribute run; decide afterwards.
            let mut j = i;
            let mut test_attr = false;
            while j < toks.len() && toks[j].is("#") && toks.get(j + 1).is_some_and(|t| t.is("[")) {
                let close = match matching(&toks, j + 1, "[", "]") {
                    Some(c) => c,
                    None => break,
                };
                let attr = &toks[j + 2..close];
                let has = |name: &str| attr.iter().any(|t| t.is_ident(name));
                // `#[cfg(test)]`, `#[test]`, `#[bench]` strip the item;
                // `#[cfg(not(test))]` is production code and is kept.
                if (has("test") && !has("not")) || has("bench") {
                    test_attr = true;
                }
                j = close + 1;
            }
            if test_attr {
                i = skip_item(&toks, j);
                continue;
            }
            // Keep the attribute tokens: harmless to later passes.
            out.extend(toks[i..j].iter().cloned());
            i = j;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Returns the index of the token closing the group opened at `open`.
fn matching(toks: &[Tok], open: usize, l: &str, r: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is(l) {
            depth += 1;
        } else if t.is(r) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Skips one item starting at `i`: to the `;` ending a declaration, or
/// through the `{...}` body of a fn/mod/impl.
fn skip_item(toks: &[Tok], i: usize) -> usize {
    let mut j = i;
    while j < toks.len() {
        if toks[j].is(";") {
            return j + 1;
        }
        if toks[j].is("{") {
            return matching(toks, j, "{", "}").map_or(toks.len(), |c| c + 1);
        }
        if toks[j].is("(") {
            j = matching(toks, j, "(", ")").map_or(toks.len(), |c| c + 1);
            continue;
        }
        if toks[j].is("[") {
            j = matching(toks, j, "[", "]").map_or(toks.len(), |c| c + 1);
            continue;
        }
        j += 1;
    }
    j
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

/// Guard-producing zero-arg methods.
const GUARD_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Calls that block (or perform IO) and therefore must not run while a
/// guard is live. `send` is included for bounded channels: a guard held
/// across a `send` deadlocks against backpressure the moment the channel
/// fills. Zero-arg members are only blocking when called with no
/// arguments — that separates `thread::JoinHandle::join()` and
/// `Receiver::recv()` from `Path::join(..)` and `slice::join(..)`.
const BLOCKING_ZERO_ARG: [&str; 5] = ["recv", "join", "flush", "sync_all", "sync_data"];
const BLOCKING_ANY_ARG: [&str; 4] = ["recv_timeout", "send", "read_chunk", "write_chunk"];

fn is_blocking_method(name: &str, zero_arg: bool) -> bool {
    BLOCKING_ANY_ARG.contains(&name) || (zero_arg && BLOCKING_ZERO_ARG.contains(&name))
}

/// Atomic RMW / access methods and which sides they touch.
fn atomic_sides(name: &str) -> Option<(bool, bool)> {
    // (store_side, load_side)
    match name {
        "load" => Some((false, true)),
        "store" => Some((true, false)),
        "swap"
        | "fetch_add"
        | "fetch_sub"
        | "fetch_max"
        | "fetch_min"
        | "fetch_and"
        | "fetch_or"
        | "fetch_xor"
        | "fetch_update"
        | "compare_exchange"
        | "compare_exchange_weak" => Some((true, true)),
        _ => None,
    }
}

/// One atomic-op occurrence, for the per-crate shared-name analysis.
struct AtomicUse {
    name: String,
    line: u32,
    relaxed: bool,
    store_side: bool,
    load_side: bool,
    allowed: bool,
    file: String,
}

/// A live `let`-bound guard.
struct Guard {
    binding: String,
    class: String,
    line: u32,
}

struct FileScan {
    findings: Vec<Finding>,
    atomics: Vec<AtomicUse>,
}

/// Scans one file: rules 1, 2 and 4 resolve immediately; atomic uses are
/// returned for the cross-file rule-3 resolution.
fn scan_file(sf: &SourceFile) -> FileScan {
    let mut findings = Vec::new();
    let mut anns = Annotations::default();
    let toks = lex(&sf.src, &sf.path, &mut anns, &mut findings);
    let toks = strip_test_items(toks);
    let mut atomics = Vec::new();

    // Scope stack: scopes[d] holds guards declared at brace depth d.
    let mut scopes: Vec<Vec<Guard>> = vec![Vec::new()];
    // Pending `let` binding per depth, consumed by a guard acquisition
    // that terminates the statement, cleared at the statement's `;`.
    let mut pending_let: HashMap<usize, String> = HashMap::new();

    let finding = |line: u32, rule: Rule, msg: String| Finding {
        file: sf.path.clone(),
        line,
        rule,
        msg,
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is("{") {
            scopes.push(Vec::new());
            i += 1;
            continue;
        }
        if t.is("}") {
            if scopes.len() > 1 {
                scopes.pop();
            }
            pending_let.remove(&scopes.len());
            i += 1;
            continue;
        }
        if t.is(";") {
            pending_let.remove(&(scopes.len() - 1));
            i += 1;
            continue;
        }
        if t.is_ident("let") {
            // `let [mut] name = ...` — remember the binding; tuple and
            // struct patterns never bind guards in this codebase.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let (Some(name), Some(eq)) = (toks.get(j), toks.get(j + 1)) {
                if name.kind == TokKind::Ident && eq.is("=") && name.text != "_" {
                    pending_let.insert(scopes.len() - 1, name.text.clone());
                }
            }
            i += 1;
            continue;
        }
        // `drop(name)` ends a guard's life early.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is("("))
            && toks.get(i + 3).is_some_and(|t| t.is(")"))
        {
            if let Some(name) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                for scope in scopes.iter_mut() {
                    scope.retain(|g| g.binding != name.text);
                }
            }
            i += 4;
            continue;
        }
        // Method calls: `.name(`.
        if t.is(".")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 2).is_some_and(|t| t.is("("))
        {
            let method = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            let close = matching(&toks, i + 2, "(", ")").unwrap_or(toks.len() - 1);
            let zero_arg = close == i + 3;

            // Rule 3 bookkeeping: any atomic access op.
            if let Some((store_side, load_side)) = atomic_sides(&method) {
                if let Some(recv) = receiver_ident(&toks, i) {
                    let relaxed = toks[i + 3..close].iter().any(|t| t.is_ident("Relaxed"));
                    atomics.push(AtomicUse {
                        name: recv,
                        line,
                        relaxed,
                        store_side,
                        load_side,
                        allowed: anns.allowed(AllowKind::Relaxed, line),
                        file: sf.path.clone(),
                    });
                }
            }

            // Rule 2: blocking call while any guard is live.
            if is_blocking_method(&method, zero_arg) {
                let live: Vec<&Guard> = scopes.iter().flatten().collect();
                if let Some(g) = live.last() {
                    if !anns.allowed(AllowKind::Blocking, line) {
                        findings.push(finding(
                            line,
                            Rule::BlockingUnderLock,
                            format!(
                                "`.{}()` while `{}` guards `{}` (acquired line {})",
                                method, g.binding, g.class, g.line
                            ),
                        ));
                    }
                }
            }

            // Rule 4: panic-policy methods.
            if sf.panic_policy
                && ((method == "unwrap" && zero_arg) || method == "expect")
                && !anns.allowed(AllowKind::Panic, line)
            {
                findings.push(finding(
                    line,
                    Rule::PanicPolicy,
                    format!(
                        "`.{method}()` on a policed hot path — return a typed error or annotate"
                    ),
                ));
            }

            // Guard acquisition: zero-arg lock()/read()/write().
            if zero_arg && GUARD_METHODS.contains(&method.as_str()) {
                let class = receiver_ident(&toks, i).unwrap_or_else(|| "<expr>".into());
                check_lock_order(&scopes, &class, line, &anns, &mut findings, &sf.path);
                // What follows the acquisition decides the guard's fate.
                let mut j = close + 1;
                loop {
                    if toks.get(j).is_some_and(|t| t.is("?")) {
                        j += 1;
                        continue;
                    }
                    if toks.get(j).is_some_and(|t| t.is("."))
                        && toks.get(j + 1).is_some_and(|t| {
                            t.is_ident("unwrap")
                                || t.is_ident("expect")
                                || t.is_ident("unwrap_or_else")
                        })
                        && toks.get(j + 2).is_some_and(|t| t.is("("))
                    {
                        j = matching(&toks, j + 2, "(", ")").map_or(toks.len(), |c| c + 1);
                        continue;
                    }
                    break;
                }
                let depth = scopes.len() - 1;
                if toks.get(j).is_some_and(|t| t.is(";")) {
                    // Final call of the statement: a live `let` guard.
                    if let Some(binding) = pending_let.remove(&depth) {
                        if let Some(scope) = scopes.last_mut() {
                            scope.push(Guard {
                                binding,
                                class,
                                line,
                            });
                        }
                    }
                } else if toks.get(j).is_some_and(|t| t.is("."))
                    && toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(j + 2).is_some_and(|t| t.is("("))
                {
                    // `rx.lock().recv()`: the temporary guard is held
                    // across the chained blocking call.
                    let chained = &toks[j + 1].text;
                    let chain_zero_arg = matching(&toks, j + 2, "(", ")") == Some(j + 3);
                    if is_blocking_method(chained, chain_zero_arg) {
                        let bline = toks[j + 1].line;
                        if !anns.allowed(AllowKind::Blocking, bline) {
                            findings.push(finding(
                                bline,
                                Rule::BlockingUnderLock,
                                format!(
                                    "`.{}()` chained on a temporary `{}` guard — the lock is held across the call",
                                    chained, class
                                ),
                            ));
                        }
                    }
                }
                i = close + 1;
                continue;
            }
            i += 2; // past `.` and the method ident; args rescanned for nested calls
            continue;
        }
        // `panic!(...)` / bare `sleep(...)` paths like `thread::sleep(..)`.
        if t.kind == TokKind::Ident {
            if sf.panic_policy
                && t.is_ident("panic")
                && toks.get(i + 1).is_some_and(|t| t.is("!"))
                && !anns.allowed(AllowKind::Panic, t.line)
            {
                findings.push(finding(
                    t.line,
                    Rule::PanicPolicy,
                    "`panic!` on a policed hot path — return a typed error or annotate".into(),
                ));
            }
            if t.is_ident("sleep") && toks.get(i + 1).is_some_and(|t| t.is("(")) {
                let live: Vec<&Guard> = scopes.iter().flatten().collect();
                if let Some(g) = live.last() {
                    if !anns.allowed(AllowKind::Blocking, t.line) {
                        findings.push(finding(
                            t.line,
                            Rule::BlockingUnderLock,
                            format!(
                                "`sleep(...)` while `{}` guards `{}` (acquired line {})",
                                g.binding, g.class, g.line
                            ),
                        ));
                    }
                }
            }
        }
        i += 1;
    }

    FileScan { findings, atomics }
}

/// Rule 1: nested acquisition of `class` while guards are live must move
/// strictly down the declared order.
fn check_lock_order(
    scopes: &[Vec<Guard>],
    class: &str,
    line: u32,
    anns: &Annotations,
    findings: &mut Vec<Finding>,
    path: &str,
) {
    let live: Vec<&Guard> = scopes.iter().flatten().collect();
    let Some(outer) = live.last() else {
        return;
    };
    if anns.allowed(AllowKind::LockOrder, line) {
        return;
    }
    let finding = |msg: String| Finding {
        file: path.to_string(),
        line,
        rule: Rule::LockOrder,
        msg,
    };
    if anns.decl_line.is_none() {
        findings.push(finding(format!(
            "nested acquisition of `{}` while `{}` is held, but the module declares no \
             lock order (add `// hc-analyze: lock-order ...`)",
            class, outer.class
        )));
        return;
    }
    let Some(&inner_rank) = anns.ranks.get(class) else {
        findings.push(finding(format!(
            "acquisition of undeclared lock class `{}` while `{}` is held — add it to the \
             module's lock-order declaration",
            class, outer.class
        )));
        return;
    };
    for g in live {
        match anns.ranks.get(&g.class) {
            None => findings.push(finding(format!(
                "guard `{}` (class `{}`, line {}) held across acquisition of `{}` but its \
                 class is not in the lock-order declaration",
                g.binding, g.class, g.line, class
            ))),
            Some(&outer_rank) if inner_rank <= outer_rank => findings.push(finding(format!(
                "lock-order violation: acquiring `{}` (rank {}) while holding `{}` (rank {}, \
                 line {}) — declared order requires strictly increasing ranks",
                class, inner_rank, g.class, outer_rank, g.line
            ))),
            Some(_) => {}
        }
    }
}

/// Receiver class of the call whose `.` is at `dot`: the nearest ident
/// scanning left, skipping index/call groups (`machines[i].lock()` →
/// `machines`, `self.state.lock()` → `state`).
fn receiver_ident(toks: &[Tok], dot: usize) -> Option<String> {
    let mut i = dot;
    loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        match toks[i].text.as_str() {
            "]" => i = matching_back(toks, i, "[", "]")?,
            ")" => i = matching_back(toks, i, "(", ")")?,
            _ => {
                if toks[i].kind == TokKind::Ident {
                    return Some(toks[i].text.clone());
                }
                return None;
            }
        }
    }
}

/// Index of the token opening the group that closes at `close`.
fn matching_back(toks: &[Tok], close: usize, l: &str, r: &str) -> Option<usize> {
    let mut depth = 0usize;
    for k in (0..=close).rev() {
        if toks[k].is(r) {
            depth += 1;
        } else if toks[k].is(l) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Analyzes a set of classified sources; returns all findings, sorted by
/// file and line.
pub fn analyze_sources(sources: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut per_crate: HashMap<String, Vec<AtomicUse>> = HashMap::new();
    for sf in sources {
        let scan = scan_file(sf);
        findings.extend(scan.findings);
        per_crate
            .entry(sf.crate_key.clone())
            .or_default()
            .extend(scan.atomics);
    }
    // Rule 3: within a crate, names that are both mutated and loaded are
    // cross-thread-visible; every Relaxed access of such a name needs an
    // allow(relaxed) justification.
    for uses in per_crate.values() {
        let stored: HashSet<&str> = uses
            .iter()
            .filter(|u| u.store_side)
            .map(|u| u.name.as_str())
            .collect();
        let loaded: HashSet<&str> = uses
            .iter()
            .filter(|u| u.load_side)
            .map(|u| u.name.as_str())
            .collect();
        for u in uses {
            if u.relaxed
                && !u.allowed
                && stored.contains(u.name.as_str())
                && loaded.contains(u.name.as_str())
            {
                findings.push(Finding {
                    file: u.file.clone(),
                    line: u.line,
                    rule: Rule::AtomicOrdering,
                    msg: format!(
                        "`Ordering::Relaxed` on `{}`, which is both mutated and loaded in this \
                         crate — justify with `// hc-analyze: allow(relaxed) <reason>` or use \
                         Acquire/Release",
                        u.name
                    ),
                });
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Convenience: classify + analyze files on disk.
pub fn analyze_paths(paths: &[PathBuf]) -> std::io::Result<Vec<Finding>> {
    let mut sources = Vec::new();
    for p in paths {
        let src = std::fs::read_to_string(p)?;
        sources.push(SourceFile::classify(p, src));
    }
    Ok(analyze_sources(&sources))
}

/// Directory names never descended into: build output, VCS, vendored lock
/// shims (they *implement* the primitives the rules police the users of),
/// and every test/bench/fixture tree.
const SKIP_DIRS: [&str; 8] = [
    "target",
    ".git",
    "shims",
    "fixtures",
    "tests",
    "benches",
    "examples",
    "node_modules",
];

/// Collects `.rs` files under `roots` (files are taken as-is), skipping
/// [`SKIP_DIRS`]. Deterministic order.
pub fn collect_rs_files(roots: &[PathBuf]) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for root in roots {
        if root.is_file() {
            out.push(root.clone());
            continue;
        }
        walk(root, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
