//! CLI for the repo-native concurrency lint pass.
//!
//! ```text
//! hc_analyze [ROOT...]        # default roots: crates tools
//! ```
//!
//! Walks `ROOT/**/*.rs` (skipping target/, shims/, tests/, benches/,
//! examples/ and fixture trees), runs the four rule families, prints every
//! finding as `file:line: [rule] message`, and exits nonzero when any
//! finding survives its annotations. See the library docs and the README's
//! "Static analysis" section for the rule set and annotation grammar.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<PathBuf> = if args.is_empty() {
        vec![PathBuf::from("crates"), PathBuf::from("tools")]
    } else {
        args.iter().map(PathBuf::from).collect()
    };
    for root in &roots {
        if !root.exists() {
            eprintln!("hc-analyze: no such path: {}", root.display());
            return ExitCode::from(2);
        }
    }
    let files = match hc_analyze::collect_rs_files(&roots) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hc-analyze: walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = match hc_analyze::analyze_paths(&files) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hc-analyze: read failed: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("hc-analyze: ok — {} files, 0 findings", files.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "hc-analyze: {} finding(s) across {} files",
            findings.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}
