//! Integration tests: each seeded fixture under `tests/fixtures/` must
//! produce exactly its planted findings (rule and line), and the real
//! workspace must analyze clean.

use std::path::{Path, PathBuf};

use hc_analyze::{analyze_paths, analyze_sources, collect_rs_files, Finding, Rule, SourceFile};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn findings_for(name: &str) -> Vec<Finding> {
    let findings = analyze_paths(&[fixture(name)]).expect("fixture readable");
    for f in &findings {
        assert!(
            f.file.ends_with(&format!("fixtures/{name}")),
            "finding attributed to the wrong file: {f}"
        );
    }
    findings
}

fn rule_lines(findings: &[Finding]) -> Vec<(Rule, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn lock_order_violation_at_exact_line() {
    let f = findings_for("lock_order_violation.rs");
    assert_eq!(rule_lines(&f), vec![(Rule::LockOrder, 14)], "{f:#?}");
    assert!(f[0].msg.contains("lock-order violation"), "{}", f[0].msg);
}

#[test]
fn undeclared_nesting_is_flagged() {
    let f = findings_for("lock_order_undeclared.rs");
    assert_eq!(rule_lines(&f), vec![(Rule::LockOrder, 13)], "{f:#?}");
    assert!(f[0].msg.contains("declares no lock order"), "{}", f[0].msg);
}

#[test]
fn sleep_under_lock_and_guard_across_send() {
    // The PR-7 LatencyStore bug class: sleeping on the modeled device
    // latency with the occupancy guard held, plus a guard held across a
    // channel send.
    let f = findings_for("blocking_under_lock.rs");
    assert_eq!(
        rule_lines(&f),
        vec![(Rule::BlockingUnderLock, 16), (Rule::BlockingUnderLock, 22)],
        "{f:#?}"
    );
    assert!(f[0].msg.contains("sleep"), "{}", f[0].msg);
    assert!(f[1].msg.contains("send"), "{}", f[1].msg);
}

#[test]
fn retry_backoff_under_lock_flagged_and_clean_shape_passes() {
    // The PR-10 retry-path bug class: a read retry must never sleep its
    // jittered backoff while a stream guard is held. The sibling function
    // that snapshots, drops the guard, then sleeps is the accepted shape
    // (`StorageManager::read_chunk_retrying`) and must stay clean.
    let f = findings_for("retry_backoff_under_lock.rs");
    assert_eq!(
        rule_lines(&f),
        vec![(Rule::BlockingUnderLock, 17)],
        "{f:#?}"
    );
    assert!(f[0].msg.contains("sleep"), "{}", f[0].msg);
}

#[test]
fn relaxed_on_shared_atomic_flagged_on_both_sides() {
    let f = findings_for("atomic_ordering.rs");
    assert_eq!(
        rule_lines(&f),
        vec![(Rule::AtomicOrdering, 11), (Rule::AtomicOrdering, 15)],
        "{f:#?}"
    );
}

#[test]
fn panic_policy_catches_unwrap_expect_and_panic() {
    // The fixture tree is outside the policed paths, so force the flag
    // the way the policed trees get it from classification.
    let path = fixture("panic_policy.rs");
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let mut sf = SourceFile::classify(&path, src);
    assert!(!sf.panic_policy, "fixtures must not be policed by default");
    sf.panic_policy = true;
    let f = analyze_sources(&[sf]);
    assert_eq!(
        rule_lines(&f),
        vec![
            (Rule::PanicPolicy, 7),
            (Rule::PanicPolicy, 11),
            (Rule::PanicPolicy, 15),
        ],
        "{f:#?}"
    );
}

#[test]
fn clean_file_has_zero_findings() {
    let f = findings_for("clean.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn allow_without_reason_is_an_error_and_waives_nothing() {
    let f = findings_for("bad_annotation.rs");
    assert_eq!(
        rule_lines(&f),
        vec![(Rule::BadAnnotation, 10), (Rule::AtomicOrdering, 11)],
        "{f:#?}"
    );
    assert!(f[0].msg.contains("without a reason"), "{}", f[0].msg);
}

#[test]
fn real_workspace_analyzes_clean() {
    // The same invocation CI runs: every finding in the live tree is
    // either fixed or carries a reasoned waiver.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let files =
        collect_rs_files(&[root.join("crates"), root.join("tools")]).expect("workspace walk");
    assert!(
        files.len() > 20,
        "workspace walk found too few files ({}) — wrong root?",
        files.len()
    );
    let findings = analyze_paths(&files).expect("workspace readable");
    assert!(
        findings.is_empty(),
        "the workspace must analyze clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
