// Seeded fixture: `hits` is mutated (line 11) and loaded (line 15) in
// this crate, so both Relaxed accesses need an allow(relaxed) reason.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Stats {
    pub hits: AtomicU64,
}

pub fn bump(s: &Stats) {
    s.hits.fetch_add(1, Ordering::Relaxed);
}

pub fn snapshot(s: &Stats) -> u64 {
    s.hits.load(Ordering::Relaxed)
}
