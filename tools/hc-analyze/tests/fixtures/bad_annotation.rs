// Seeded fixture: an allow waiver with no reason is itself an error
// (line 10), and because the waiver is void the Relaxed access it tried
// to cover is still flagged (line 11).

use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    // hc-analyze: allow(relaxed)
    HITS.fetch_add(1, Ordering::Relaxed);
}

pub fn snapshot() -> u64 {
    HITS.load(Ordering::Acquire)
}
