// Seeded fixture: the PR-7 LatencyStore bug class. `serve_read` sleeps
// for the modeled device latency while the occupancy guard is held, so
// every concurrent reader of the device serializes behind the wait
// (line 16). `publish` holds a guard across a channel send (line 22).

use std::sync::mpsc::Sender;
use std::sync::Mutex;
use std::time::Duration;

pub struct Device {
    pub occupancy: Mutex<u64>,
}

pub fn serve_read(dev: &Device, latency: Duration) {
    let slot = dev.occupancy.lock().unwrap();
    std::thread::sleep(latency);
    drop(slot);
}

pub fn publish(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock().unwrap();
    let _ = tx.send(*g);
}
