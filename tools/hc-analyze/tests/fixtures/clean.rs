// Seeded fixture: zero findings expected. Guards nest in declared
// order, the shared counter carries a justified waiver, and blocking
// work happens with no guard live.
// hc-analyze: lock-order a < b

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

pub struct Ordered {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
    pub hits: AtomicU64,
}

pub fn forwards(o: &Ordered) -> u32 {
    let a = o.a.lock().unwrap();
    let b = o.b.lock().unwrap();
    *a + *b
}

pub fn bump_and_read(o: &Ordered) -> u64 {
    // hc-analyze: allow(relaxed) monotonic test counter; never paired with other state
    o.hits.fetch_add(1, Ordering::Relaxed);
    // hc-analyze: allow(relaxed) monotonic test counter; never paired with other state
    o.hits.load(Ordering::Relaxed)
}

pub fn wait_outside_lock(o: &Ordered) -> u32 {
    let held = { *o.a.lock().unwrap() };
    std::thread::sleep(Duration::from_millis(1));
    held
}
