// Seeded fixture: nested guard acquisition in a module with no
// lock-order declaration — flagged on line 13.

use std::sync::Mutex;

pub struct Pair {
    pub outer: Mutex<u32>,
    pub inner: Mutex<u32>,
}

pub fn nested(p: &Pair) {
    let outer = p.outer.lock().unwrap();
    let inner = p.inner.lock().unwrap();
    drop(inner);
    drop(outer);
}
