// Seeded fixture: the declared order is map before cell, but
// `backwards` takes cell first — violation expected on line 14.
// hc-analyze: lock-order map < cell

use std::sync::Mutex;

pub struct Shard {
    pub map: Mutex<u32>,
    pub cell: Mutex<u32>,
}

pub fn backwards(s: &Shard) {
    let cell = s.cell.lock().unwrap();
    let map = s.map.lock().unwrap();
    drop(map);
    drop(cell);
}
