// Seeded fixture: analyzed with the panic policy forced on (this tree
// is outside the policed paths, so the test sets the flag itself).
// Expected findings: unwrap on line 7, expect on line 11, panic! on
// line 15.

pub fn risky(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn risky_with_message(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn boom() {
    panic!("nope");
}
