// Seeded fixture: the PR-10 retry-backoff bug class. `read_retrying`
// sleeps the jittered backoff with the stream table's guard still held
// (line 17), serializing every concurrent reader behind one read's
// retry wait. `read_retrying_ok` snapshots under the guard, drops it,
// then sleeps — the shape the storage manager's `read_chunk_retrying`
// must keep.

use std::sync::Mutex;
use std::time::Duration;

pub struct StreamTable {
    pub n_durable: Mutex<u64>,
}

pub fn read_retrying(table: &StreamTable, backoff: Duration) {
    let streams = table.n_durable.lock().unwrap();
    std::thread::sleep(backoff);
    drop(streams);
}

pub fn read_retrying_ok(table: &StreamTable, backoff: Duration) {
    let snapshot;
    {
        let streams = table.n_durable.lock().unwrap();
        snapshot = *streams;
    }
    std::thread::sleep(backoff);
    let _ = snapshot;
}
